//! Component health model: ok / degraded / unhealthy, computed from
//! windowed metric signals.
//!
//! [`compute_health`] takes the *live* registry snapshot plus an optional
//! baseline (normally the newest flight-recorder frame) and scores four
//! components from the delta between them — the "current open window":
//!
//! - **executor** — queue-depth per worker from the live
//!   `milvus_exec_queue_depth` / `milvus_exec_workers` gauges; a persistently
//!   deep queue means searches are waiting instead of scanning.
//! - **transport** — `milvus_net_link_up` gauges (a down link degrades, all
//!   links down is unhealthy) plus the windowed `milvus_net_retries_total`
//!   burst count.
//! - **bufferpool** — windowed evictions over lookups
//!   (`milvus_bufferpool_evictions_total` / hits+misses); high churn means
//!   the working set no longer fits.
//! - **search** — live `milvus_search_coverage_ratio` (ppm; anything under
//!   full coverage degrades, zero coverage is unhealthy) plus the windowed
//!   `milvus_search_degraded_total` count.
//! - **writer** — the `milvus_writer_up` gauge (present only on clusters
//!   running failover-managed ingest): 0 means the writer is unreachable
//!   and a takeover is in flight (unhealthy); up but with
//!   `milvus_writer_failovers_total` bursts inside the open window means
//!   ingest just rode through a crash (degraded, ok again next window).
//!
//! All signals are counts, ratios, or gauges — no wall-clock denominators —
//! so the model works identically under SimNet's virtual clock and is fully
//! deterministic in tests: tick the recorder, induce the fault, ask for
//! health, and the open window contains exactly the induced events.

use crate::{
    MetricsSnapshot, EXEC_QUEUE_DEPTH, EXEC_WORKERS, NET_LINK_UP, NET_RETRIES, POOL_EVICTIONS,
    POOL_HITS, POOL_MISSES, SCHED_SHED, SEARCH_COVERAGE_RATIO, SEARCH_DEGRADED, WRITER_FAILOVERS,
    WRITER_UP,
};
use std::sync::RwLock;

/// Health of one component or of the whole process. Ordered: `Ok` <
/// `Degraded` < `Unhealthy`, so `max` picks the worst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthStatus {
    /// Operating normally.
    Ok,
    /// Serving, but impaired (partial coverage, saturation, link loss).
    Degraded,
    /// Not meaningfully serving.
    Unhealthy,
}

impl HealthStatus {
    /// Wire form: "ok" / "degraded" / "unhealthy".
    pub fn as_str(self) -> &'static str {
        match self {
            HealthStatus::Ok => "ok",
            HealthStatus::Degraded => "degraded",
            HealthStatus::Unhealthy => "unhealthy",
        }
    }
}

/// One component's verdict plus the signal that drove it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentHealth {
    /// "executor" / "transport" / "bufferpool" / "search".
    pub component: &'static str,
    /// The verdict.
    pub status: HealthStatus,
    /// Human-readable driver, e.g. `"1/4 links down"`.
    pub reason: String,
}

/// The whole-process report `GET /health` serializes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// Worst component status.
    pub status: HealthStatus,
    /// Per-component verdicts, fixed order.
    pub components: Vec<ComponentHealth>,
}

/// Tunable cutoffs; defaults are deliberately loose so transient blips in
/// tests and small deployments do not flap the endpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthThresholds {
    /// Queued tasks per worker above which the executor is degraded.
    pub exec_queue_per_worker_degraded: f64,
    /// Queued tasks per worker above which the executor is unhealthy.
    pub exec_queue_per_worker_unhealthy: f64,
    /// Net retries inside the open window above which transport degrades
    /// even with every link nominally up.
    pub net_retry_burst_degraded: u64,
    /// Windowed evictions / lookups above which the bufferpool is degraded.
    pub pool_eviction_ratio_degraded: f64,
    /// Windowed evictions / lookups above which the bufferpool is unhealthy.
    pub pool_eviction_ratio_unhealthy: f64,
    /// Degraded searches inside the open window above which search is
    /// degraded even if the last search happened to be complete.
    pub degraded_search_burst: u64,
    /// Scheduler-shed queries inside the open window at or above which the
    /// executor component is degraded: admission control turning traffic
    /// away is load the pool could not absorb, even if the queue gauge has
    /// already drained by the time health is asked.
    pub sched_shed_burst_degraded: u64,
    /// Writer failovers inside the open window at or above which the writer
    /// component is degraded: ingest recovered, but a takeover just
    /// happened — the next clean window reports ok again.
    pub writer_failover_burst_degraded: u64,
}

impl Default for HealthThresholds {
    fn default() -> Self {
        Self {
            exec_queue_per_worker_degraded: 4.0,
            exec_queue_per_worker_unhealthy: 32.0,
            net_retry_burst_degraded: 50,
            pool_eviction_ratio_degraded: 0.25,
            pool_eviction_ratio_unhealthy: 0.75,
            degraded_search_burst: 1,
            sched_shed_burst_degraded: 1,
            writer_failover_burst_degraded: 1,
        }
    }
}

fn thresholds_cell() -> &'static RwLock<HealthThresholds> {
    static CELL: std::sync::OnceLock<RwLock<HealthThresholds>> = std::sync::OnceLock::new();
    CELL.get_or_init(|| RwLock::new(HealthThresholds::default()))
}

/// Replace the process-global thresholds (`Milvus::configure_health`).
pub fn set_health_thresholds(t: HealthThresholds) {
    *thresholds_cell().write().expect("health thresholds lock") = t;
}

/// Current process-global thresholds.
pub fn health_thresholds() -> HealthThresholds {
    thresholds_cell().read().expect("health thresholds lock").clone()
}

/// Windowed counter-family delta: live minus baseline, summed over
/// non-segment series (segment-granular series double-count their parents).
fn family_delta(live: &MetricsSnapshot, baseline: Option<&MetricsSnapshot>, name: &str) -> u64 {
    let sum = |s: &MetricsSnapshot| -> u64 {
        s.counters
            .iter()
            .filter(|(k, _)| k.name == name && k.segment.is_none())
            .map(|(_, v)| *v)
            .sum()
    };
    sum(live).saturating_sub(baseline.map_or(0, sum))
}

fn executor_health(
    live: &MetricsSnapshot,
    baseline: Option<&MetricsSnapshot>,
    th: &HealthThresholds,
) -> ComponentHealth {
    // Worst pool wins; pools with zero registered workers are ignored
    // (gauges left behind by dropped pools idle at depth 0 anyway).
    let mut worst: Option<(String, f64)> = None;
    for (key, &workers) in live.gauges.iter().filter(|(k, _)| k.name == EXEC_WORKERS) {
        if workers <= 0 {
            continue;
        }
        let depth = live.gauge(EXEC_QUEUE_DEPTH, &key.label).max(0) as f64;
        let per_worker = depth / workers as f64;
        if worst.as_ref().is_none_or(|(_, w)| per_worker > *w) {
            worst = Some((key.label.clone(), per_worker));
        }
    }
    let (pool, per_worker) = worst.unwrap_or_else(|| (String::from("-"), 0.0));
    // Shed queries are the scheduler's own saturation verdict: the queue
    // gauge can drain between the overload and the health probe, but the
    // shed counter delta inside the open window cannot un-happen, so load
    // shedding flips this component deterministically.
    let shed = family_delta(live, baseline, SCHED_SHED);
    let status = if per_worker >= th.exec_queue_per_worker_unhealthy {
        HealthStatus::Unhealthy
    } else if per_worker >= th.exec_queue_per_worker_degraded
        || shed >= th.sched_shed_burst_degraded.max(1)
    {
        HealthStatus::Degraded
    } else {
        HealthStatus::Ok
    };
    ComponentHealth {
        component: "executor",
        status,
        reason: format!(
            "pool {pool:?} queue depth/worker {per_worker:.2}, {shed} shed in window"
        ),
    }
}

fn transport_health(
    live: &MetricsSnapshot,
    baseline: Option<&MetricsSnapshot>,
    th: &HealthThresholds,
) -> ComponentHealth {
    let links: Vec<(&str, i64)> = live
        .gauges
        .iter()
        .filter(|(k, _)| k.name == NET_LINK_UP)
        .map(|(k, &v)| (k.label.as_str(), v))
        .collect();
    let down = links.iter().filter(|(_, v)| *v == 0).count();
    let retries = family_delta(live, baseline, NET_RETRIES);
    let (status, reason) = if !links.is_empty() && down == links.len() {
        (HealthStatus::Unhealthy, format!("all {} links down", links.len()))
    } else if down > 0 {
        (HealthStatus::Degraded, format!("{down}/{} links down", links.len()))
    } else if retries > th.net_retry_burst_degraded {
        (HealthStatus::Degraded, format!("{retries} retries in window"))
    } else {
        (
            HealthStatus::Ok,
            format!("{} links up, {retries} retries in window", links.len()),
        )
    };
    ComponentHealth { component: "transport", status, reason }
}

fn bufferpool_health(
    live: &MetricsSnapshot,
    baseline: Option<&MetricsSnapshot>,
    th: &HealthThresholds,
) -> ComponentHealth {
    let evictions = family_delta(live, baseline, POOL_EVICTIONS);
    let lookups =
        family_delta(live, baseline, POOL_HITS) + family_delta(live, baseline, POOL_MISSES);
    let ratio = if lookups == 0 { 0.0 } else { evictions as f64 / lookups as f64 };
    let status = if ratio >= th.pool_eviction_ratio_unhealthy {
        HealthStatus::Unhealthy
    } else if ratio >= th.pool_eviction_ratio_degraded {
        HealthStatus::Degraded
    } else {
        HealthStatus::Ok
    };
    ComponentHealth {
        component: "bufferpool",
        status,
        reason: format!("{evictions} evictions / {lookups} lookups in window"),
    }
}

fn search_health(
    live: &MetricsSnapshot,
    baseline: Option<&MetricsSnapshot>,
    th: &HealthThresholds,
) -> ComponentHealth {
    // Coverage gauges exist only once a distributed search ran; a process
    // that never searched is trivially ok.
    let coverage: Vec<(&str, i64)> = live
        .gauges
        .iter()
        .filter(|(k, _)| k.name == SEARCH_COVERAGE_RATIO)
        .map(|(k, &v)| (k.label.as_str(), v))
        .collect();
    let worst_ppm = coverage.iter().map(|(_, v)| *v).min();
    let degraded = family_delta(live, baseline, SEARCH_DEGRADED);
    let (status, reason) = match worst_ppm {
        Some(0) => (HealthStatus::Unhealthy, "last search covered 0 shards".to_string()),
        Some(ppm) if ppm < 1_000_000 => (
            HealthStatus::Degraded,
            format!("coverage {:.1}% on last search", ppm as f64 / 1e4),
        ),
        _ if degraded >= th.degraded_search_burst.max(1) => (
            HealthStatus::Degraded,
            format!("{degraded} degraded searches in window"),
        ),
        _ => (
            HealthStatus::Ok,
            format!("full coverage, {degraded} degraded in window"),
        ),
    };
    ComponentHealth { component: "search", status, reason }
}

fn writer_health(
    live: &MetricsSnapshot,
    baseline: Option<&MetricsSnapshot>,
    th: &HealthThresholds,
) -> ComponentHealth {
    // The up-gauge exists only on clusters running failover-managed ingest;
    // a process without one has nothing to report on.
    let up: Vec<i64> =
        live.gauges.iter().filter(|(k, _)| k.name == WRITER_UP).map(|(_, &v)| v).collect();
    let failovers = family_delta(live, baseline, WRITER_FAILOVERS);
    let (status, reason) = if up.is_empty() {
        (HealthStatus::Ok, "no failover-managed writer".to_string())
    } else if up.contains(&0) {
        (HealthStatus::Unhealthy, "writer down, takeover in flight".to_string())
    } else if failovers >= th.writer_failover_burst_degraded.max(1) {
        (HealthStatus::Degraded, format!("{failovers} failovers in window"))
    } else {
        (HealthStatus::Ok, format!("writer up, {failovers} failovers in window"))
    };
    ComponentHealth { component: "writer", status, reason }
}

/// Score every component from `live` against `baseline` (the newest
/// recorded frame; `None` treats all history as in-window) and roll the
/// worst status up to the report level.
pub fn compute_health(
    live: &MetricsSnapshot,
    baseline: Option<&MetricsSnapshot>,
    th: &HealthThresholds,
) -> HealthReport {
    let components = vec![
        executor_health(live, baseline, th),
        transport_health(live, baseline, th),
        bufferpool_health(live, baseline, th),
        search_health(live, baseline, th),
        writer_health(live, baseline, th),
    ];
    let status = components
        .iter()
        .map(|c| c.status)
        .max()
        .unwrap_or(HealthStatus::Ok);
    HealthReport { status, components }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Key;

    fn key(name: &str, label: &str) -> Key {
        Key { name: name.into(), label: label.into(), segment: None }
    }

    fn th() -> HealthThresholds {
        HealthThresholds::default()
    }

    #[test]
    fn empty_snapshot_is_ok() {
        let live = MetricsSnapshot::default();
        let r = compute_health(&live, None, &th());
        assert_eq!(r.status, HealthStatus::Ok);
        assert_eq!(r.components.len(), 5);
    }

    #[test]
    fn writer_health_tracks_failover_lifecycle() {
        // No up-gauge at all: nothing to manage, ok.
        let live = MetricsSnapshot::default();
        let r = compute_health(&live, None, &th());
        assert_eq!(r.components[4].status, HealthStatus::Ok);

        // Writer down mid-takeover: unhealthy.
        let mut live = MetricsSnapshot::default();
        live.gauges.insert(key(WRITER_UP, "cluster"), 0);
        let r = compute_health(&live, None, &th());
        assert_eq!(r.components[4].status, HealthStatus::Unhealthy);
        assert_eq!(r.status, HealthStatus::Unhealthy);

        // Back up, but a failover landed in the open window: degraded.
        let mut base = MetricsSnapshot::default();
        base.counters.insert(key(WRITER_FAILOVERS, "cluster"), 3);
        let mut live = base.clone();
        live.gauges.insert(key(WRITER_UP, "cluster"), 1);
        live.counters.insert(key(WRITER_FAILOVERS, "cluster"), 4);
        let r = compute_health(&live, Some(&base), &th());
        assert_eq!(r.components[4].status, HealthStatus::Degraded);
        assert!(r.components[4].reason.contains("1 failovers"), "{}", r.components[4].reason);

        // Next window is clean: ok again.
        let base = live.clone();
        let r = compute_health(&live, Some(&base), &th());
        assert_eq!(r.components[4].status, HealthStatus::Ok);
        assert_eq!(r.status, HealthStatus::Ok);
    }

    #[test]
    fn saturated_executor_degrades_then_goes_unhealthy() {
        let mut live = MetricsSnapshot::default();
        live.gauges.insert(key(EXEC_WORKERS, "global"), 4);
        live.gauges.insert(key(EXEC_QUEUE_DEPTH, "global"), 20);
        let r = compute_health(&live, None, &th());
        assert_eq!(r.components[0].status, HealthStatus::Degraded);
        live.gauges.insert(key(EXEC_QUEUE_DEPTH, "global"), 400);
        let r = compute_health(&live, None, &th());
        assert_eq!(r.components[0].status, HealthStatus::Unhealthy);
        assert_eq!(r.status, HealthStatus::Unhealthy);
    }

    #[test]
    fn down_link_degrades_transport_and_all_down_is_unhealthy() {
        let mut live = MetricsSnapshot::default();
        live.gauges.insert(key(NET_LINK_UP, "client->reader0"), 1);
        live.gauges.insert(key(NET_LINK_UP, "client->reader1"), 0);
        let r = compute_health(&live, None, &th());
        assert_eq!(r.components[1].status, HealthStatus::Degraded);
        live.gauges.insert(key(NET_LINK_UP, "client->reader0"), 0);
        let r = compute_health(&live, None, &th());
        assert_eq!(r.components[1].status, HealthStatus::Unhealthy);
    }

    #[test]
    fn retry_burst_is_windowed_against_the_baseline() {
        let mut base = MetricsSnapshot::default();
        base.counters.insert(key(NET_RETRIES, "a->b"), 1_000);
        let mut live = base.clone();
        live.counters.insert(key(NET_RETRIES, "a->b"), 1_020);
        // 20 retries in-window: under the default burst threshold.
        let r = compute_health(&live, Some(&base), &th());
        assert_eq!(r.components[1].status, HealthStatus::Ok);
        // Without the baseline the whole history counts and trips it.
        let r = compute_health(&live, None, &th());
        assert_eq!(r.components[1].status, HealthStatus::Degraded);
    }

    #[test]
    fn partial_coverage_degrades_search_and_zero_is_unhealthy() {
        let mut live = MetricsSnapshot::default();
        live.gauges.insert(key(SEARCH_COVERAGE_RATIO, "cluster"), 750_000);
        live.counters.insert(key(SEARCH_DEGRADED, "cluster"), 1);
        let r = compute_health(&live, None, &th());
        assert_eq!(r.components[3].status, HealthStatus::Degraded);
        assert!(r.components[3].reason.contains("75.0%"), "{}", r.components[3].reason);
        live.gauges.insert(key(SEARCH_COVERAGE_RATIO, "cluster"), 0);
        let r = compute_health(&live, None, &th());
        assert_eq!(r.components[3].status, HealthStatus::Unhealthy);
    }

    #[test]
    fn recovered_coverage_with_clean_window_is_ok_again() {
        // Degraded history exists, but the gauge shows full coverage and the
        // baseline absorbs the old degraded count: ok.
        let mut base = MetricsSnapshot::default();
        base.counters.insert(key(SEARCH_DEGRADED, "cluster"), 7);
        let mut live = base.clone();
        live.gauges.insert(key(SEARCH_COVERAGE_RATIO, "cluster"), 1_000_000);
        let r = compute_health(&live, Some(&base), &th());
        assert_eq!(r.components[3].status, HealthStatus::Ok);
        assert_eq!(r.status, HealthStatus::Ok);
    }

    #[test]
    fn shed_burst_degrades_executor_and_is_windowed() {
        // Historic sheds absorbed by the baseline keep the executor ok...
        let mut base = MetricsSnapshot::default();
        base.counters.insert(key(SCHED_SHED, "vectors"), 10);
        let live = base.clone();
        let r = compute_health(&live, Some(&base), &th());
        assert_eq!(r.components[0].status, HealthStatus::Ok);
        // ...but a single in-window shed flips it to degraded even with an
        // empty executor queue.
        let mut live = base.clone();
        live.counters.insert(key(SCHED_SHED, "vectors"), 11);
        let r = compute_health(&live, Some(&base), &th());
        assert_eq!(r.components[0].status, HealthStatus::Degraded);
        assert!(r.components[0].reason.contains("1 shed"), "{}", r.components[0].reason);
        assert_eq!(r.status, HealthStatus::Degraded);
    }

    #[test]
    fn eviction_churn_degrades_bufferpool() {
        let mut live = MetricsSnapshot::default();
        live.counters.insert(key(POOL_HITS, "pool"), 60);
        live.counters.insert(key(POOL_MISSES, "pool"), 40);
        live.counters.insert(key(POOL_EVICTIONS, "pool"), 40);
        let r = compute_health(&live, None, &th());
        assert_eq!(r.components[2].status, HealthStatus::Degraded);
        live.counters.insert(key(POOL_EVICTIONS, "pool"), 90);
        let r = compute_health(&live, None, &th());
        assert_eq!(r.components[2].status, HealthStatus::Unhealthy);
    }
}

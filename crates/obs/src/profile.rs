//! Query profiler: aggregates finished traces into per-collection,
//! per-stage time breakdowns.
//!
//! Every *sampled* trace that completes (slow or not) is folded into a
//! process-global [`QueryProfiler`] keyed by `(collection, op)`. Each entry
//! accumulates query count, end-to-end latency, and per-[`SpanKind`] span
//! counts and durations — parse/route/segment_scan/filter/heap_merge/rerank
//! on the query path, queue_wait from the executor, and rpc/net_retry/
//! failover attribution from the distributed layer. The report answers
//! "where does collection X's search time actually go?" without a single
//! extra clock read on the hot path: the profiler only sees traces the
//! sampler already admitted, and recording is one short mutex hold at query
//! completion.
//!
//! [`explain_report`] renders a single [`FinishedTrace`] as a human-readable
//! `EXPLAIN ANALYZE`-style table: stage rollup sorted by total time, then
//! the raw span timeline. Because segment scans run in parallel on the
//! executor, stage totals are *CPU-time-like* sums and can legitimately
//! exceed 100% of wall-clock latency.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use crate::trace::{FinishedTrace, SpanKind};

/// Number of distinct [`SpanKind`]s; sizes the per-op stage arrays.
const NKINDS: usize = SpanKind::ALL.len();

/// Aggregate for one span kind within one `(collection, op)` entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageProfile {
    /// The stage.
    pub kind: SpanKind,
    /// Spans of this kind observed across all recorded queries.
    pub spans: u64,
    /// Total time attributed to this stage, microseconds.
    pub total_us: u64,
}

impl StageProfile {
    /// Mean span duration in microseconds (0 when no spans).
    pub fn mean_us(&self) -> f64 {
        if self.spans == 0 {
            0.0
        } else {
            self.total_us as f64 / self.spans as f64
        }
    }
}

/// Per-`(collection, op)` profile: query volume, end-to-end latency, and
/// the per-stage breakdown (non-empty stages only, largest total first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpProfile {
    /// Collection label ("" for process-wide ops).
    pub collection: String,
    /// Operation name ("search", "filtered_search", ...).
    pub op: &'static str,
    /// Sampled queries folded into this entry.
    pub queries: u64,
    /// Sum of end-to-end latencies, microseconds.
    pub total_latency_us: u64,
    /// Spans dropped because traces overflowed their inline span storage.
    pub dropped_spans: u64,
    /// Stages with at least one span, sorted by `total_us` descending.
    pub stages: Vec<StageProfile>,
}

impl OpProfile {
    /// Mean end-to-end latency in microseconds.
    pub fn mean_latency_us(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.total_latency_us as f64 / self.queries as f64
        }
    }

    /// Total microseconds attributed to `kind` (0 when absent).
    pub fn stage_us(&self, kind: SpanKind) -> u64 {
        self.stages.iter().find(|s| s.kind == kind).map_or(0, |s| s.total_us)
    }

    /// Sum of all stage totals. With parallel fan-out this can exceed
    /// `total_latency_us` (it is CPU-time-like, not wall-clock).
    pub fn stages_total_us(&self) -> u64 {
        self.stages.iter().map(|s| s.total_us).sum()
    }
}

/// Snapshot of the whole profiler, sorted by `(collection, op)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileReport {
    /// One entry per `(collection, op)` pair seen since the last clear.
    pub ops: Vec<OpProfile>,
}

impl ProfileReport {
    /// Look up one entry.
    pub fn op(&self, collection: &str, op: &str) -> Option<&OpProfile> {
        self.ops.iter().find(|o| o.collection == collection && o.op == op)
    }
}

#[derive(Default)]
struct OpAgg {
    queries: u64,
    latency_us: u64,
    dropped: u64,
    stage_spans: [u64; NKINDS],
    stage_us: [u64; NKINDS],
}

/// Process-global trace aggregator; see the module docs.
#[derive(Default)]
pub struct QueryProfiler {
    inner: Mutex<HashMap<(String, &'static str), OpAgg>>,
}

impl QueryProfiler {
    /// Fold one finished trace into the aggregate.
    pub fn record(&self, trace: &FinishedTrace) {
        let mut inner = self.inner.lock().expect("profiler lock");
        let agg = inner
            .entry((trace.collection.clone(), trace.op))
            .or_default();
        agg.queries += 1;
        agg.latency_us += trace.total_us;
        agg.dropped += trace.dropped_spans as u64;
        for span in &trace.spans {
            let i = span.kind.index();
            agg.stage_spans[i] += 1;
            agg.stage_us[i] += span.dur_us;
        }
    }

    /// Snapshot the aggregate as a sorted report.
    pub fn report(&self) -> ProfileReport {
        let inner = self.inner.lock().expect("profiler lock");
        let mut ops: Vec<OpProfile> = inner
            .iter()
            .map(|((collection, op), agg)| {
                let mut stages: Vec<StageProfile> = SpanKind::ALL
                    .iter()
                    .map(|&kind| StageProfile {
                        kind,
                        spans: agg.stage_spans[kind.index()],
                        total_us: agg.stage_us[kind.index()],
                    })
                    .filter(|s| s.spans > 0)
                    .collect();
                stages.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.kind.index().cmp(&b.kind.index())));
                OpProfile {
                    collection: collection.clone(),
                    op,
                    queries: agg.queries,
                    total_latency_us: agg.latency_us,
                    dropped_spans: agg.dropped,
                    stages,
                }
            })
            .collect();
        ops.sort_by(|a, b| a.collection.cmp(&b.collection).then(a.op.cmp(b.op)));
        ProfileReport { ops }
    }

    /// Discard everything recorded so far (tests, `POST /debug/profile/reset`).
    pub fn clear(&self) {
        self.inner.lock().expect("profiler lock").clear();
    }
}

/// The process-global profiler `Milvus::profile()` and `GET /debug/profile`
/// read from.
pub fn query_profiler() -> &'static QueryProfiler {
    static GLOBAL: OnceLock<QueryProfiler> = OnceLock::new();
    GLOBAL.get_or_init(QueryProfiler::default)
}

fn fmt_ms(us: u64) -> String {
    format!("{:.3}ms", us as f64 / 1e3)
}

/// Render one finished trace as an `EXPLAIN ANALYZE`-style report: header,
/// per-stage rollup (sorted by total time), then the span timeline. Stage
/// percentages are relative to wall-clock latency and can exceed 100% in
/// aggregate when stages ran in parallel.
pub fn explain_report(trace: &FinishedTrace) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str(&format!(
        "EXPLAIN ANALYZE op={} collection={:?} total={} spans={}{}\n",
        trace.op,
        trace.collection,
        fmt_ms(trace.total_us),
        trace.spans.len(),
        if trace.dropped_spans > 0 {
            format!(" dropped={}", trace.dropped_spans)
        } else {
            String::new()
        },
    ));

    let mut spans = [0u64; NKINDS];
    let mut us = [0u64; NKINDS];
    for span in &trace.spans {
        spans[span.kind.index()] += 1;
        us[span.kind.index()] += span.dur_us;
    }
    let mut order: Vec<usize> = (0..NKINDS).filter(|&i| spans[i] > 0).collect();
    order.sort_by(|&a, &b| us[b].cmp(&us[a]).then(a.cmp(&b)));

    out.push_str("  stage          spans      total       mean  % of query\n");
    let total = trace.total_us.max(1) as f64;
    for i in order {
        let mean = us[i] as f64 / spans[i] as f64;
        out.push_str(&format!(
            "  {:<14} {:>5} {:>10} {:>10} {:>10.1}%\n",
            SpanKind::ALL[i].as_str(),
            spans[i],
            fmt_ms(us[i]),
            format!("{:.3}ms", mean / 1e3),
            us[i] as f64 / total * 100.0,
        ));
    }

    out.push_str("  spans:\n");
    for (i, span) in trace.spans.iter().enumerate() {
        out.push_str(&format!(
            "    #{:<3} {:<14} @{:>8}us {:>8}us",
            i,
            span.kind.as_str(),
            span.start_us,
            span.dur_us,
        ));
        if span.segment_id >= 0 {
            out.push_str(&format!(" segment={}", span.segment_id));
        }
        if span.shard >= 0 {
            out.push_str(&format!(" shard={}", span.shard));
        }
        if span.rows_scanned > 0 {
            out.push_str(&format!(" rows={}", span.rows_scanned));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Span;

    fn trace(collection: &str, op: &'static str, total_us: u64, spans: Vec<Span>) -> FinishedTrace {
        FinishedTrace {
            collection: collection.to_string(),
            op,
            seq: 0,
            total_us,
            threshold_us: u64::MAX,
            dropped_spans: 0,
            spans,
        }
    }

    fn span(kind: SpanKind, start_us: u64, dur_us: u64) -> Span {
        Span { kind, start_us, dur_us, ..Span::default() }
    }

    #[test]
    fn aggregates_per_collection_and_stage() {
        let p = QueryProfiler::default();
        p.record(&trace(
            "a",
            "search",
            100,
            vec![span(SpanKind::Parse, 0, 5), span(SpanKind::SegmentScan, 10, 80)],
        ));
        p.record(&trace(
            "a",
            "search",
            200,
            vec![span(SpanKind::SegmentScan, 0, 150), span(SpanKind::QueueWait, 0, 20)],
        ));
        p.record(&trace("b", "search", 50, vec![span(SpanKind::HeapMerge, 40, 9)]));

        let r = p.report();
        assert_eq!(r.ops.len(), 2);
        let a = r.op("a", "search").expect("entry for a");
        assert_eq!(a.queries, 2);
        assert_eq!(a.total_latency_us, 300);
        assert_eq!(a.stage_us(SpanKind::SegmentScan), 230);
        assert_eq!(a.stage_us(SpanKind::QueueWait), 20);
        assert_eq!(a.stage_us(SpanKind::Parse), 5);
        // Sorted by total descending.
        assert_eq!(a.stages[0].kind, SpanKind::SegmentScan);
        assert!((a.mean_latency_us() - 150.0).abs() < 1e-9);
        let b = r.op("b", "search").expect("entry for b");
        assert_eq!(b.queries, 1);
        assert_eq!(b.stages.len(), 1);
    }

    #[test]
    fn clear_resets() {
        let p = QueryProfiler::default();
        p.record(&trace("x", "search", 10, vec![]));
        assert_eq!(p.report().ops.len(), 1);
        p.clear();
        assert!(p.report().ops.is_empty());
    }

    #[test]
    fn explain_report_lists_stages_by_total_time() {
        let t = trace(
            "imgs",
            "search",
            1_000,
            vec![
                span(SpanKind::Parse, 0, 10),
                span(SpanKind::QueueWait, 20, 40),
                span(SpanKind::SegmentScan, 60, 900),
                span(SpanKind::HeapMerge, 960, 30),
            ],
        );
        let text = explain_report(&t);
        assert!(text.starts_with("EXPLAIN ANALYZE op=search collection=\"imgs\""));
        let scan = text.find("segment_scan").expect("scan stage listed");
        let wait = text.find("queue_wait").expect("wait stage listed");
        assert!(scan < wait, "stages must be sorted by total time:\n{text}");
        assert!(text.contains("90.0%"), "dominant stage percentage:\n{text}");
        assert!(text.contains("#2"), "span timeline rendered:\n{text}");
    }
}

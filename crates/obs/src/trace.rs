//! Per-query structured tracing and the slow-query log.
//!
//! Aggregate histograms (the rest of this crate) answer *how slow* the
//! system is; traces answer *why one query* was slow. A [`Trace`] is created
//! at query admission, threaded by value through the query pipeline, and
//! records typed child [`Span`]s — parse, route, per-segment scan (with
//! segment id, rows scanned and cache outcome), heap merge, rerank — with
//! monotonic timing relative to the trace start.
//!
//! Design constraints, in order:
//!
//! - **Zero cost when off.** Sampling is decided once at admission; an
//!   unsampled trace is a `None` and every subsequent call on it is a no-op
//!   that never reads the clock, takes a lock, or allocates. The
//!   [`TRACE_SPANS`] / [`TRACES_SAMPLED`] counters move **only** for sampled
//!   traces, which is what `tests/tracing.rs` uses to assert the hot loop is
//!   untouched at sampling 0.0 (counter-based, not wall clock).
//! - **No per-span allocation.** A sampled trace holds a fixed-capacity
//!   inline span array ([`MAX_SPANS`]); recording a span writes into the next
//!   slot. Overflow increments a `dropped_spans` count instead of growing.
//! - **Bounded retention.** Completed traces whose end-to-end latency
//!   exceeds the slow threshold are pushed into a global ring buffer
//!   ([`SlowQueryLog`]) of configurable capacity; old entries fall off the
//!   back. The threshold is the live p99 of the query-latency histogram for
//!   the trace's label once enough samples exist, else a static fallback —
//!   both configurable via [`TraceConfig`].

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

use crate::{registry, Counter, QUERY_LATENCY, SLOW_QUERIES, TRACES_SAMPLED, TRACE_SPANS};

/// Fixed capacity of a trace's inline span array. Spans recorded past this
/// limit are counted in `dropped_spans`, never allocated.
pub const MAX_SPANS: usize = 64;

/// What a span measured. The taxonomy mirrors the paper's query pipeline
/// (§3.2–§3.3: route → per-segment scan → heap merge, plus rerank for
/// multi-vector and filter for attribute queries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpanKind {
    /// Anything not covered below.
    #[default]
    Other,
    /// Request validation / schema resolution.
    Parse,
    /// Snapshot acquisition and segment routing.
    Route,
    /// One segment's scan (brute force or index probe).
    SegmentScan,
    /// A storage fetch (object store get + decode) on the read path.
    StorageRead,
    /// Attribute predicate evaluation (bitmap / range extraction).
    Filter,
    /// Merging per-segment or per-thread top-k heaps.
    HeapMerge,
    /// Candidate re-scoring (multi-vector naive / NRA paths).
    Rerank,
    /// One query-block pass of a batch engine.
    BatchScan,
    /// A per-field ANN index probe (multi-vector).
    IndexSearch,
    /// Time a fanned-out task spent queued on the executor before a worker
    /// picked it up — kept separate from the stage's run time so the
    /// profiler can distinguish saturation from slow scans.
    QueueWait,
    /// One remote call (distributed search fan-out), including transport
    /// retries and backoff.
    Rpc,
    /// A remote call that exhausted its retries and failed.
    NetRetry,
    /// Re-fanning one orphaned shard to surviving readers.
    Failover,
    /// Time a query spent held in the scheduler's coalescing window before
    /// its batch executed — separate from executor [`SpanKind::QueueWait`]
    /// so the profiler can tell deliberate batching from pool saturation.
    CoalesceWait,
}

impl SpanKind {
    /// Every kind, in discriminant order; `ALL[k.index()] == k`.
    pub const ALL: [SpanKind; 15] = [
        SpanKind::Other,
        SpanKind::Parse,
        SpanKind::Route,
        SpanKind::SegmentScan,
        SpanKind::StorageRead,
        SpanKind::Filter,
        SpanKind::HeapMerge,
        SpanKind::Rerank,
        SpanKind::BatchScan,
        SpanKind::IndexSearch,
        SpanKind::QueueWait,
        SpanKind::Rpc,
        SpanKind::NetRetry,
        SpanKind::Failover,
        SpanKind::CoalesceWait,
    ];

    /// Dense index for per-kind aggregation arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable lowercase name used in JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Other => "other",
            SpanKind::Parse => "parse",
            SpanKind::Route => "route",
            SpanKind::SegmentScan => "segment_scan",
            SpanKind::StorageRead => "storage_read",
            SpanKind::Filter => "filter",
            SpanKind::HeapMerge => "heap_merge",
            SpanKind::Rerank => "rerank",
            SpanKind::BatchScan => "batch_scan",
            SpanKind::IndexSearch => "index_search",
            SpanKind::QueueWait => "queue_wait",
            SpanKind::Rpc => "rpc",
            SpanKind::NetRetry => "net_retry",
            SpanKind::Failover => "failover",
            SpanKind::CoalesceWait => "coalesce_wait",
        }
    }
}

/// Whether a scanned segment was served from a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheOutcome {
    /// The path has no cache in front of it (memory-resident segment).
    #[default]
    Untracked,
    /// Served from the bufferpool.
    Hit,
    /// Loaded from shared storage (bufferpool miss).
    Miss,
}

impl CacheOutcome {
    /// JSON value: `"hit"`, `"miss"`, or `None` for untracked.
    pub fn as_str(self) -> Option<&'static str> {
        match self {
            CacheOutcome::Untracked => None,
            CacheOutcome::Hit => Some("hit"),
            CacheOutcome::Miss => Some("miss"),
        }
    }
}

/// One recorded pipeline stage. `Copy` and fixed-size so traces can hold
/// them inline without allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Stage type.
    pub kind: SpanKind,
    /// Microseconds from trace start to span start.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// Segment scanned, `-1` when not segment-scoped.
    pub segment_id: i64,
    /// Shard the segment belongs to (distributed readers), `-1` otherwise.
    pub shard: i64,
    /// Rows the stage considered (scan candidates, bitmap size, …).
    pub rows_scanned: u64,
    /// Cache outcome for the segment this span touched.
    pub cache: CacheOutcome,
}

impl Default for Span {
    fn default() -> Self {
        Span {
            kind: SpanKind::Other,
            start_us: 0,
            dur_us: 0,
            segment_id: -1,
            shard: -1,
            rows_scanned: 0,
            cache: CacheOutcome::Untracked,
        }
    }
}

/// Tracing configuration. Process-global; see [`set_trace_config`].
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Fraction of admitted queries that get a trace, in `[0.0, 1.0]`.
    /// `0.0` disables tracing entirely (no clock reads, no allocation);
    /// sampling is deterministic (every ⌈1/rate⌉-ish admission), not random.
    pub sample_rate: f64,
    /// Static slow threshold in µs. `None` derives the threshold from the
    /// live p99 of `milvus_query_latency_seconds{collection=<label>}`.
    pub slow_threshold_us: Option<u64>,
    /// Threshold used while the label's histogram has fewer than
    /// [`TraceConfig::min_p99_samples`] observations.
    pub slow_fallback_us: u64,
    /// Observations required before trusting the histogram's p99.
    pub min_p99_samples: u64,
    /// Slow-query ring buffer capacity.
    pub ring_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            sample_rate: 1.0,
            slow_threshold_us: None,
            slow_fallback_us: 50_000, // 50ms: clearly pathological for ANN
            min_p99_samples: 200,
            ring_capacity: 128,
        }
    }
}

/// Sampling rate in parts-per-million, cached in an atomic so admission
/// never takes the config lock.
static RATE_PPM: AtomicU64 = AtomicU64::new(1_000_000);
/// Admission counter driving deterministic sampling.
static ADMITTED: AtomicU64 = AtomicU64::new(0);

fn config_cell() -> &'static RwLock<TraceConfig> {
    static CONFIG: OnceLock<RwLock<TraceConfig>> = OnceLock::new();
    CONFIG.get_or_init(|| RwLock::new(TraceConfig::default()))
}

/// Replace the process-global tracing configuration.
pub fn set_trace_config(cfg: TraceConfig) {
    let ppm = (cfg.sample_rate.clamp(0.0, 1.0) * 1_000_000.0).round() as u64;
    RATE_PPM.store(ppm, Ordering::Relaxed);
    *config_cell().write().expect("trace config lock") = cfg;
}

/// Current tracing configuration (a copy).
pub fn trace_config() -> TraceConfig {
    config_cell().read().expect("trace config lock").clone()
}

/// Deterministic proportional sampler: for rate `p`, admission `n` is
/// sampled iff `⌊(n+1)·p⌋ > ⌊n·p⌋`, which selects exactly a `p` fraction.
fn should_sample() -> bool {
    let ppm = RATE_PPM.load(Ordering::Relaxed);
    if ppm == 0 {
        return false;
    }
    if ppm >= 1_000_000 {
        return true;
    }
    let n = ADMITTED.fetch_add(1, Ordering::Relaxed);
    (n + 1) * ppm / 1_000_000 > n * ppm / 1_000_000
}

/// Cached counter handles so span recording never touches the registry map.
fn sampled_counter() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| registry().counter(TRACES_SAMPLED, ""))
}

fn spans_counter() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| registry().counter(TRACE_SPANS, ""))
}

/// The slow threshold in µs for traces labeled `label` under the current
/// configuration: static override if set, else live p99 with fallback.
pub fn slow_threshold_us(label: &str) -> u64 {
    let (static_threshold, fallback, min_samples) = {
        let cfg = config_cell().read().expect("trace config lock");
        (cfg.slow_threshold_us, cfg.slow_fallback_us, cfg.min_p99_samples)
    };
    if let Some(t) = static_threshold {
        return t;
    }
    let h = registry().histogram(QUERY_LATENCY, label);
    if h.count() >= min_samples.max(1) {
        h.quantile_live_us(0.99) as u64
    } else {
        fallback
    }
}

struct TraceInner {
    label: Arc<str>,
    op: &'static str,
    start: Instant,
    spans: [Span; MAX_SPANS],
    len: usize,
    dropped: u32,
    seq: u64,
}

/// A per-query trace handle. Cheap to create (one `Option` when unsampled,
/// one boxed fixed-size buffer when sampled) and threaded by `&mut` through
/// the pipeline.
pub struct Trace {
    inner: Option<Box<TraceInner>>,
}

/// Opaque span start token. [`Trace::begin`] returns a live clock reading
/// only for sampled traces; recording with a dead token is a no-op.
#[derive(Debug, Clone, Copy)]
pub struct SpanStart(Option<Instant>);

static TRACE_SEQ: AtomicU64 = AtomicU64::new(0);

impl Trace {
    /// A trace that records nothing, at no cost.
    pub fn disabled() -> Trace {
        Trace { inner: None }
    }

    /// Admit a query: returns a recording trace if the sampler elects it,
    /// else a disabled one. `label` is the collection (or node) the query
    /// belongs to; `op` names the operation (`"search"`, …).
    pub fn start(op: &'static str, label: &Arc<str>) -> Trace {
        if !should_sample() {
            return Trace::disabled();
        }
        sampled_counter().inc();
        Trace {
            inner: Some(Box::new(TraceInner {
                label: Arc::clone(label),
                op,
                start: Instant::now(),
                spans: [Span::default(); MAX_SPANS],
                len: 0,
                dropped: 0,
                seq: TRACE_SEQ.fetch_add(1, Ordering::Relaxed),
            })),
        }
    }

    /// A trace that always records, bypassing the sampler (tests, tooling).
    pub fn forced(op: &'static str, label: &str) -> Trace {
        sampled_counter().inc();
        Trace {
            inner: Some(Box::new(TraceInner {
                label: Arc::from(label),
                op,
                start: Instant::now(),
                spans: [Span::default(); MAX_SPANS],
                len: 0,
                dropped: 0,
                seq: TRACE_SEQ.fetch_add(1, Ordering::Relaxed),
            })),
        }
    }

    /// Whether this trace records anything.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Start a span. Reads the clock only when the trace is live.
    pub fn begin(&self) -> SpanStart {
        SpanStart(self.inner.as_ref().map(|_| Instant::now()))
    }

    /// Record a span of `kind` started at `start` with default metadata.
    pub fn record(&mut self, kind: SpanKind, start: SpanStart) {
        self.record_with(kind, start, |_| {});
    }

    /// Record a span, letting `fill` attach metadata (segment id, rows,
    /// cache outcome, shard). No-op for disabled traces or dead tokens.
    pub fn record_with(&mut self, kind: SpanKind, start: SpanStart, fill: impl FnOnce(&mut Span)) {
        let Some(inner) = self.inner.as_deref_mut() else { return };
        let Some(t0) = start.0 else { return };
        let now = Instant::now();
        if inner.len == MAX_SPANS {
            inner.dropped += 1;
            return;
        }
        let span = &mut inner.spans[inner.len];
        *span = Span {
            kind,
            start_us: t0.duration_since(inner.start).as_micros() as u64,
            dur_us: now.duration_since(t0).as_micros() as u64,
            ..Span::default()
        };
        fill(span);
        inner.len += 1;
        spans_counter().inc();
    }

    /// Record a span from an explicit `[start, end]` wall-clock window —
    /// used when the measured work ran on an executor worker and the span
    /// is recorded after the structured join, on the admitting thread.
    /// Windows that began before the trace clamp to the trace start.
    pub fn record_window(
        &mut self,
        kind: SpanKind,
        start: Instant,
        end: Instant,
        fill: impl FnOnce(&mut Span),
    ) {
        let Some(inner) = self.inner.as_deref_mut() else { return };
        if inner.len == MAX_SPANS {
            inner.dropped += 1;
            return;
        }
        let span = &mut inner.spans[inner.len];
        *span = Span {
            kind,
            start_us: start.saturating_duration_since(inner.start).as_micros() as u64,
            dur_us: end.saturating_duration_since(start).as_micros() as u64,
            ..Span::default()
        };
        fill(span);
        inner.len += 1;
        spans_counter().inc();
    }

    /// Spans recorded so far (0 for disabled traces).
    pub fn span_count(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.len)
    }

    /// Shared completion path: build the [`FinishedTrace`], fold it into
    /// the query profiler (every sampled trace feeds the per-stage
    /// aggregate, not just slow ones), and — if slow — count it and push it
    /// into the slow-query ring.
    fn complete(inner: Box<TraceInner>) -> Arc<FinishedTrace> {
        let total_us = inner.start.elapsed().as_micros() as u64;
        let threshold_us = slow_threshold_us(&inner.label);
        let finished = Arc::new(FinishedTrace {
            collection: inner.label.to_string(),
            op: inner.op,
            seq: inner.seq,
            total_us,
            threshold_us,
            dropped_spans: inner.dropped,
            spans: inner.spans[..inner.len].to_vec(),
        });
        crate::profile::query_profiler().record(&finished);
        if finished.is_slow() {
            registry().counter(SLOW_QUERIES, &inner.label).inc();
            let capacity = {
                config_cell().read().expect("trace config lock").ring_capacity
            };
            slow_query_log().push(Arc::clone(&finished), capacity);
        }
        finished
    }

    /// Complete the trace: if its end-to-end latency exceeds the slow
    /// threshold for its label, serialize it into the global slow-query ring
    /// and return it. Fast queries (and disabled traces) return `None` —
    /// but every sampled trace, fast or slow, still feeds the profiler.
    pub fn finish(mut self) -> Option<Arc<FinishedTrace>> {
        let inner = self.inner.take()?;
        let finished = Self::complete(inner);
        finished.is_slow().then_some(finished)
    }

    /// Complete the trace and return it regardless of latency (`None` only
    /// for disabled traces). Used by `EXPLAIN ANALYZE`-style tooling that
    /// wants the breakdown of an arbitrary query.
    pub fn finish_always(mut self) -> Option<Arc<FinishedTrace>> {
        let inner = self.inner.take()?;
        Some(Self::complete(inner))
    }
}

/// A completed slow query: what the ring buffer stores and
/// `GET /debug/slow_queries` serves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FinishedTrace {
    /// Label the trace was admitted under (collection or node name).
    pub collection: String,
    /// Operation (`"search"`, `"filtered_search"`, `"reader_search"`, …).
    pub op: &'static str,
    /// Process-wide admission sequence number (stable ordering).
    pub seq: u64,
    /// End-to-end latency.
    pub total_us: u64,
    /// The slow threshold that was in force when the query completed.
    pub threshold_us: u64,
    /// Spans that did not fit in the fixed-capacity array.
    pub dropped_spans: u32,
    /// Recorded spans in admission order.
    pub spans: Vec<Span>,
}

impl FinishedTrace {
    /// The span that consumed the most time, if any were recorded.
    pub fn hottest_span(&self) -> Option<&Span> {
        self.spans.iter().max_by_key(|s| s.dur_us)
    }

    /// Whether this query exceeded the slow threshold in force when it
    /// completed (the ring-admission criterion).
    pub fn is_slow(&self) -> bool {
        self.total_us > self.threshold_us
    }
}

/// Bounded ring of recent slow queries, newest last.
#[derive(Default)]
pub struct SlowQueryLog {
    inner: Mutex<VecDeque<Arc<FinishedTrace>>>,
}

impl SlowQueryLog {
    fn push(&self, trace: Arc<FinishedTrace>, capacity: usize) {
        let mut ring = self.inner.lock().expect("slow query log lock");
        while ring.len() >= capacity.max(1) {
            ring.pop_front();
        }
        ring.push_back(trace);
    }

    /// Copy of the ring, oldest first.
    pub fn snapshot(&self) -> Vec<Arc<FinishedTrace>> {
        self.inner.lock().expect("slow query log lock").iter().cloned().collect()
    }

    /// Entries currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("slow query log lock").len()
    }

    /// True when no slow query has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all retained entries (tests).
    pub fn clear(&self) {
        self.inner.lock().expect("slow query log lock").clear();
    }
}

/// The process-global slow-query ring buffer.
pub fn slow_query_log() -> &'static SlowQueryLog {
    static LOG: OnceLock<SlowQueryLog> = OnceLock::new();
    LOG.get_or_init(SlowQueryLog::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that mutate the global trace config.
    fn config_guard() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        assert!(!t.enabled());
        let s = t.begin();
        t.record(SpanKind::SegmentScan, s);
        assert_eq!(t.span_count(), 0);
        assert!(t.finish().is_none());
    }

    #[test]
    fn forced_trace_records_spans_with_metadata() {
        let mut t = Trace::forced("search", "trace_unit");
        let s = t.begin();
        std::thread::sleep(std::time::Duration::from_millis(1));
        t.record_with(SpanKind::SegmentScan, s, |sp| {
            sp.segment_id = 7;
            sp.rows_scanned = 123;
            sp.cache = CacheOutcome::Hit;
        });
        assert_eq!(t.span_count(), 1);
        let inner = t.inner.as_ref().unwrap();
        let sp = inner.spans[0];
        assert_eq!(sp.kind, SpanKind::SegmentScan);
        assert_eq!(sp.segment_id, 7);
        assert_eq!(sp.rows_scanned, 123);
        assert_eq!(sp.cache, CacheOutcome::Hit);
        assert!(sp.dur_us >= 500, "dur_us={}", sp.dur_us);
    }

    #[test]
    fn span_overflow_is_counted_not_grown() {
        let mut t = Trace::forced("search", "trace_overflow");
        for _ in 0..(MAX_SPANS + 5) {
            let s = t.begin();
            t.record(SpanKind::Other, s);
        }
        let inner = t.inner.as_ref().unwrap();
        assert_eq!(inner.len, MAX_SPANS);
        assert_eq!(inner.dropped, 5);
    }

    #[test]
    fn deterministic_sampler_proportions() {
        // Directly exercise the arithmetic, not the global state.
        let picks = |ppm: u64, n: u64| {
            (0..n).filter(|&i| (i + 1) * ppm / 1_000_000 > i * ppm / 1_000_000).count()
        };
        assert_eq!(picks(0, 1000), 0);
        assert_eq!(picks(1_000_000, 1000), 1000);
        assert_eq!(picks(500_000, 1000), 500);
        assert_eq!(picks(10_000, 1000), 10);
    }

    #[test]
    fn slow_trace_lands_in_ring_and_fast_one_does_not() {
        let _g = config_guard();
        let prior = trace_config();
        set_trace_config(TraceConfig {
            slow_threshold_us: Some(0),
            ..TraceConfig::default()
        });
        let mut t = Trace::forced("search", "trace_ring_unit");
        let s = t.begin();
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.record(SpanKind::SegmentScan, s);
        let finished = t.finish().expect("trace above threshold 0 must be slow");
        assert_eq!(finished.collection, "trace_ring_unit");
        assert_eq!(finished.spans.len(), 1);
        assert!(slow_query_log()
            .snapshot()
            .iter()
            .any(|f| f.seq == finished.seq));

        // An absurdly high threshold keeps the next trace out of the ring.
        set_trace_config(TraceConfig {
            slow_threshold_us: Some(u64::MAX),
            ..TraceConfig::default()
        });
        let t = Trace::forced("search", "trace_ring_unit");
        assert!(t.finish().is_none());
        set_trace_config(prior);
    }

    #[test]
    fn ring_is_bounded() {
        let _g = config_guard();
        let prior = trace_config();
        set_trace_config(TraceConfig {
            slow_threshold_us: Some(0),
            ring_capacity: 4,
            ..TraceConfig::default()
        });
        for _ in 0..10 {
            let t = Trace::forced("search", "trace_ring_bound");
            std::thread::sleep(std::time::Duration::from_micros(100));
            t.finish();
        }
        assert!(slow_query_log().len() <= 4, "ring exceeded its capacity");
        set_trace_config(prior);
    }

    #[test]
    fn threshold_uses_fallback_until_histogram_is_warm() {
        let _g = config_guard();
        let prior = trace_config();
        set_trace_config(TraceConfig {
            slow_threshold_us: None,
            slow_fallback_us: 12_345,
            min_p99_samples: 1_000_000, // histogram can never be warm here
            ..TraceConfig::default()
        });
        assert_eq!(slow_threshold_us("trace_cold_label"), 12_345);
        set_trace_config(prior);
    }
}

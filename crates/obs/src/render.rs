//! Prometheus text exposition (version 0.0.4) of a [`MetricsSnapshot`].
//!
//! Every *declared* family ([`crate::FAMILIES`]) always renders its `# HELP`
//! and `# TYPE` lines, even with zero observations, so dashboards never see
//! a family appear out of nowhere after its first event (series flapping).
//! Ad-hoc families (series recorded under names not in the declaration
//! table, e.g. from tests) still render with a `# TYPE` header derived from
//! the registry map they live in.

use std::collections::BTreeMap;

use crate::{
    FamilyDesc, HistogramSnapshot, Key, MetricKind, MetricsSnapshot, BUCKET_BOUNDS_US, FAMILIES,
};

fn label_suffix(key: &Key, extra: Option<(&str, String)>) -> String {
    let mut parts = Vec::new();
    if !key.label.is_empty() {
        parts.push(format!("collection=\"{}\"", key.label));
    }
    if let Some(seg) = key.segment {
        parts.push(format!("segment=\"{seg}\""));
    }
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn render_histogram(out: &mut String, key: &Key, h: &HistogramSnapshot) {
    let mut cumulative = 0u64;
    for (i, &c) in h.bucket_counts.iter().enumerate() {
        cumulative += c;
        let le = if i < BUCKET_BOUNDS_US.len() {
            // Bounds are microseconds; Prometheus convention is seconds.
            format!("{}", BUCKET_BOUNDS_US[i] as f64 / 1e6)
        } else {
            "+Inf".to_string()
        };
        out.push_str(&format!(
            "{}_bucket{} {}\n",
            key.name,
            label_suffix(key, Some(("le", le))),
            cumulative
        ));
    }
    out.push_str(&format!(
        "{}_sum{} {}\n",
        key.name,
        label_suffix(key, None),
        h.sum_us as f64 / 1e6
    ));
    out.push_str(&format!("{}_count{} {}\n", key.name, label_suffix(key, None), h.count));
}

fn declared(name: &str) -> Option<&'static FamilyDesc> {
    FAMILIES.iter().find(|f| f.name == name)
}

fn push_header(out: &mut String, name: &str, fallback_kind: MetricKind) {
    match declared(name) {
        Some(f) => {
            out.push_str(&format!("# HELP {} {}\n", f.name, f.help));
            out.push_str(&format!("# TYPE {} {}\n", f.name, f.kind.as_str()));
        }
        None => out.push_str(&format!("# TYPE {name} {}\n", fallback_kind.as_str())),
    }
}

/// Group a series map by family name, preserving key order within a family.
fn by_family<V>(map: &BTreeMap<Key, V>) -> BTreeMap<&str, Vec<(&Key, &V)>> {
    let mut grouped: BTreeMap<&str, Vec<(&Key, &V)>> = BTreeMap::new();
    for (key, value) in map {
        grouped.entry(key.name.as_str()).or_default().push((key, value));
    }
    grouped
}

/// Render the snapshot in Prometheus text format: one HELP/TYPE header per
/// family (declared families always present), series ordered by name, then
/// label, then segment.
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();

    let counters = by_family(&snap.counters);
    let gauges = by_family(&snap.gauges);
    let histograms = by_family(&snap.histograms);

    // Union of declared and observed family names, per kind, sorted.
    let mut counter_names: Vec<&str> = counters.keys().copied().collect();
    let mut gauge_names: Vec<&str> = gauges.keys().copied().collect();
    let mut histogram_names: Vec<&str> = histograms.keys().copied().collect();
    for f in FAMILIES {
        match f.kind {
            MetricKind::Counter => counter_names.push(f.name),
            MetricKind::Gauge => gauge_names.push(f.name),
            MetricKind::Histogram => histogram_names.push(f.name),
        }
    }
    for names in [&mut counter_names, &mut gauge_names, &mut histogram_names] {
        names.sort_unstable();
        names.dedup();
    }

    for name in counter_names {
        push_header(&mut out, name, MetricKind::Counter);
        for (key, value) in counters.get(name).map(Vec::as_slice).unwrap_or_default() {
            out.push_str(&format!("{}{} {}\n", key.name, label_suffix(key, None), value));
        }
    }

    for name in gauge_names {
        push_header(&mut out, name, MetricKind::Gauge);
        for (key, value) in gauges.get(name).map(Vec::as_slice).unwrap_or_default() {
            out.push_str(&format!("{}{} {}\n", key.name, label_suffix(key, None), value));
        }
    }

    for name in histogram_names {
        push_header(&mut out, name, MetricKind::Histogram);
        for (key, h) in histograms.get(name).map(Vec::as_slice).unwrap_or_default() {
            render_histogram(&mut out, key, h);
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use crate::Registry;

    #[test]
    fn prometheus_output_contains_families_and_buckets() {
        let r = Registry::new();
        r.counter("milvus_ingest_rows_total", "col_a").add(12);
        r.counter("milvus_ingest_rows_total", "col_b").add(3);
        r.gauge("milvus_segments", "col_a").set(4);
        r.histogram("milvus_query_latency_seconds", "col_a").observe_us(100);
        let text = r.render_prometheus();

        assert!(text.contains("# TYPE milvus_ingest_rows_total counter"));
        assert!(text.contains("milvus_ingest_rows_total{collection=\"col_a\"} 12"));
        assert!(text.contains("milvus_ingest_rows_total{collection=\"col_b\"} 3"));
        assert!(text.contains("# TYPE milvus_segments gauge"));
        assert!(text.contains("milvus_segments{collection=\"col_a\"} 4"));
        assert!(text.contains("# TYPE milvus_query_latency_seconds histogram"));
        assert!(text.contains("milvus_query_latency_seconds_bucket{collection=\"col_a\",le=\"+Inf\"} 1"));
        assert!(text.contains("milvus_query_latency_seconds_count{collection=\"col_a\"} 1"));
        // Buckets are cumulative: the 256µs bucket already includes the
        // 100µs observation.
        assert!(text.contains("le=\"0.000256\"} 1"), "{text}");
    }

    #[test]
    fn unlabeled_series_render_without_braces() {
        let r = Registry::new();
        r.counter("milvus_wal_appends_total", "").add(2);
        let text = r.render_prometheus();
        assert!(text.contains("milvus_wal_appends_total 2\n"), "{text}");
    }

    #[test]
    fn zero_observation_families_still_render_help_and_type() {
        // A completely untouched registry still declares every family.
        let text = Registry::new().render_prometheus();
        for f in crate::FAMILIES {
            assert!(
                text.contains(&format!("# HELP {} ", f.name)),
                "missing HELP for {}",
                f.name
            );
            assert!(
                text.contains(&format!("# TYPE {} {}", f.name, f.kind.as_str())),
                "missing TYPE for {}",
                f.name
            );
        }
        // No series lines: every non-empty line is a comment.
        assert!(text.lines().all(|l| l.is_empty() || l.starts_with('#')), "{text}");
    }

    #[test]
    fn segment_granular_series_carry_a_segment_label() {
        let r = Registry::new();
        r.counter_seg(crate::POOL_HITS, "reader-1", 42).add(9);
        r.gauge_seg(crate::POOL_RESIDENT_BYTES, "reader-1", 42).set(1024);
        let text = r.render_prometheus();
        assert!(
            text.contains("milvus_bufferpool_hits_total{collection=\"reader-1\",segment=\"42\"} 9"),
            "{text}"
        );
        assert!(
            text.contains(
                "milvus_bufferpool_resident_bytes{collection=\"reader-1\",segment=\"42\"} 1024"
            ),
            "{text}"
        );
    }

    #[test]
    fn headers_appear_once_per_family() {
        let r = Registry::new();
        r.counter("milvus_query_total", "a").inc();
        r.counter("milvus_query_total", "b").inc();
        let text = r.render_prometheus();
        let headers =
            text.lines().filter(|l| *l == "# TYPE milvus_query_total counter").count();
        assert_eq!(headers, 1, "{text}");
    }
}

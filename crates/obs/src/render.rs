//! Prometheus text exposition (version 0.0.4) of a [`MetricsSnapshot`].

use crate::{HistogramSnapshot, Key, MetricsSnapshot, BUCKET_BOUNDS_US};

fn label_suffix(key: &Key, extra: Option<(&str, String)>) -> String {
    let mut parts = Vec::new();
    if !key.label.is_empty() {
        parts.push(format!("collection=\"{}\"", key.label));
    }
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn render_histogram(out: &mut String, key: &Key, h: &HistogramSnapshot) {
    let mut cumulative = 0u64;
    for (i, &c) in h.bucket_counts.iter().enumerate() {
        cumulative += c;
        let le = if i < BUCKET_BOUNDS_US.len() {
            // Bounds are microseconds; Prometheus convention is seconds.
            format!("{}", BUCKET_BOUNDS_US[i] as f64 / 1e6)
        } else {
            "+Inf".to_string()
        };
        out.push_str(&format!(
            "{}_bucket{} {}\n",
            key.name,
            label_suffix(key, Some(("le", le))),
            cumulative
        ));
    }
    out.push_str(&format!(
        "{}_sum{} {}\n",
        key.name,
        label_suffix(key, None),
        h.sum_us as f64 / 1e6
    ));
    out.push_str(&format!("{}_count{} {}\n", key.name, label_suffix(key, None), h.count));
}

/// Render the snapshot in Prometheus text format, one `# TYPE` header per
/// metric family, series ordered by name then label.
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();

    let mut last_family = "";
    for (key, value) in &snap.counters {
        if key.name != last_family {
            out.push_str(&format!("# TYPE {} counter\n", key.name));
            last_family = &key.name;
        }
        out.push_str(&format!("{}{} {}\n", key.name, label_suffix(key, None), value));
    }

    let mut last_family = "";
    for (key, value) in &snap.gauges {
        if key.name != last_family {
            out.push_str(&format!("# TYPE {} gauge\n", key.name));
            last_family = &key.name;
        }
        out.push_str(&format!("{}{} {}\n", key.name, label_suffix(key, None), value));
    }

    let mut last_family = "";
    for (key, h) in &snap.histograms {
        if key.name != last_family {
            out.push_str(&format!("# TYPE {} histogram\n", key.name));
            last_family = &key.name;
        }
        render_histogram(&mut out, key, h);
    }

    out
}

#[cfg(test)]
mod tests {
    use crate::Registry;

    #[test]
    fn prometheus_output_contains_families_and_buckets() {
        let r = Registry::new();
        r.counter("milvus_ingest_rows_total", "col_a").add(12);
        r.counter("milvus_ingest_rows_total", "col_b").add(3);
        r.gauge("milvus_segments", "col_a").set(4);
        r.histogram("milvus_query_latency_seconds", "col_a").observe_us(100);
        let text = r.render_prometheus();

        assert!(text.contains("# TYPE milvus_ingest_rows_total counter"));
        assert!(text.contains("milvus_ingest_rows_total{collection=\"col_a\"} 12"));
        assert!(text.contains("milvus_ingest_rows_total{collection=\"col_b\"} 3"));
        assert!(text.contains("# TYPE milvus_segments gauge"));
        assert!(text.contains("milvus_segments{collection=\"col_a\"} 4"));
        assert!(text.contains("# TYPE milvus_query_latency_seconds histogram"));
        assert!(text.contains("milvus_query_latency_seconds_bucket{collection=\"col_a\",le=\"+Inf\"} 1"));
        assert!(text.contains("milvus_query_latency_seconds_count{collection=\"col_a\"} 1"));
        // Buckets are cumulative: the 256µs bucket already includes the
        // 100µs observation.
        assert!(text.contains("le=\"0.000256\"} 1"), "{text}");
    }

    #[test]
    fn unlabeled_series_render_without_braces() {
        let r = Registry::new();
        r.counter("milvus_wal_appends_total", "").add(2);
        let text = r.render_prometheus();
        assert!(text.contains("milvus_wal_appends_total 2\n"), "{text}");
    }
}

//! Observability layer: metrics and span timing for the query / ingest /
//! storage paths.
//!
//! Tuning an ANN system is an empirical loop over measured
//! recall/latency/memory tradeoffs (Douze et al. 2024; Pan et al. 2023), so
//! instrumentation is built into the system rather than bolted onto
//! benchmarks. Design goals:
//!
//! - **Lock-light hot path.** Every metric is a plain atomic. The registry's
//!   `RwLock` is only taken to *look up or create* a metric; callers hold on
//!   to the returned `Arc` handle, so steady-state recording is a single
//!   `fetch_add` (counters/histograms) with no lock at all.
//! - **Per-collection families.** A metric is identified by `(name, label)`
//!   where the label is usually the collection name; `label = ""` means the
//!   process-wide series.
//! - **Fixed-bucket latency histograms.** Powers-of-four microsecond buckets
//!   from 1µs to ~17s; p50/p95/p99 are interpolated from bucket counts at
//!   snapshot time, never maintained inline.
//! - **Two consumers.** [`Registry::render_prometheus`] produces Prometheus
//!   text exposition for `GET /metrics`; [`Registry::snapshot`] produces a
//!   programmatic [`MetricsSnapshot`] for tests and `Milvus::metrics_snapshot`.
//!
//! The process-global [`registry()`] is what the system crates record into;
//! tests that assert on deltas should capture a snapshot before acting and
//! subtract (other tests in the same process may be recording concurrently,
//! so absolute values are only meaningful for collection-labeled series the
//! test owns).

mod health;
mod profile;
mod recorder;
mod render;
mod trace;

pub use health::{
    compute_health, health_thresholds, set_health_thresholds, ComponentHealth, HealthReport,
    HealthStatus, HealthThresholds,
};
pub use profile::{
    explain_report, query_profiler, OpProfile, ProfileReport, QueryProfiler, StageProfile,
};
pub use recorder::{
    flight_recorder, uptime_us, FlightRecorder, RecorderDriver, TimeSeriesReport, WindowFrame,
};
pub use render::render_prometheus;
pub use trace::{
    set_trace_config, slow_query_log, slow_threshold_us, trace_config, CacheOutcome,
    FinishedTrace, SlowQueryLog, Span, SpanKind, SpanStart, Trace, TraceConfig, MAX_SPANS,
};

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// Upper bounds (µs) of the latency histogram buckets: 4^k from 1µs to
/// ~17s. The final implicit bucket is +Inf.
pub const BUCKET_BOUNDS_US: [u64; 13] = [
    1,
    4,
    16,
    64,
    256,
    1_024,
    4_096,
    16_384,
    65_536,
    262_144,
    1_048_576,
    4_194_304,
    16_777_216,
];

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Point-in-time signed value (e.g. current segment count).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket latency histogram over microsecond observations.
#[derive(Debug)]
pub struct Histogram {
    /// `counts[i]` = observations ≤ `BUCKET_BOUNDS_US[i]`; the last slot is
    /// the +Inf bucket.
    counts: [AtomicU64; BUCKET_BOUNDS_US.len() + 1],
    sum_us: AtomicU64,
    total: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
            total: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one observation, in microseconds.
    pub fn observe_us(&self, us: u64) {
        let idx = BUCKET_BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(BUCKET_BOUNDS_US.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Approximate quantile computed directly from the live atomic bucket
    /// counts — no snapshot, no allocation. Used on the query completion
    /// path to derive the slow-query threshold from the current p99.
    pub fn quantile_live_us(&self, q: f64) -> f64 {
        let count = self.total.load(Ordering::Relaxed);
        if count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * count as f64).max(1.0);
        let mut seen = 0u64;
        for (i, slot) in self.counts.iter().enumerate() {
            let c = slot.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            if (seen + c) as f64 >= rank {
                let lower = if i == 0 { 0 } else { BUCKET_BOUNDS_US[i - 1] };
                let upper = if i < BUCKET_BOUNDS_US.len() {
                    BUCKET_BOUNDS_US[i]
                } else {
                    return BUCKET_BOUNDS_US[BUCKET_BOUNDS_US.len() - 1] as f64;
                };
                let into = (rank - seen as f64) / c as f64;
                return lower as f64 + into * (upper - lower) as f64;
            }
            seen += c;
        }
        BUCKET_BOUNDS_US[BUCKET_BOUNDS_US.len() - 1] as f64
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bucket_counts: self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            sum_us: self.sum_us.load(Ordering::Relaxed),
            count: self.total.load(Ordering::Relaxed),
        }
    }
}

/// Immutable copy of a histogram's state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Per-bucket (not cumulative) counts; last entry is +Inf.
    pub bucket_counts: Vec<u64>,
    pub sum_us: u64,
    pub count: u64,
}

impl HistogramSnapshot {
    /// Approximate quantile in microseconds, linearly interpolated within
    /// the winning bucket. `q` in [0, 1]. Returns 0 for empty histograms.
    pub fn quantile_us(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut seen = 0u64;
        for (i, &c) in self.bucket_counts.iter().enumerate() {
            if c == 0 {
                seen += c;
                continue;
            }
            if (seen + c) as f64 >= rank {
                let lower = if i == 0 { 0 } else { BUCKET_BOUNDS_US[i - 1] };
                let upper = if i < BUCKET_BOUNDS_US.len() {
                    BUCKET_BOUNDS_US[i]
                } else {
                    // +Inf bucket: report its lower bound.
                    return BUCKET_BOUNDS_US[BUCKET_BOUNDS_US.len() - 1] as f64;
                };
                let into = (rank - seen as f64) / c as f64;
                return lower as f64 + into * (upper - lower) as f64;
            }
            seen += c;
        }
        BUCKET_BOUNDS_US[BUCKET_BOUNDS_US.len() - 1] as f64
    }

    pub fn p50_us(&self) -> f64 {
        self.quantile_us(0.50)
    }

    pub fn p95_us(&self) -> f64 {
        self.quantile_us(0.95)
    }

    pub fn p99_us(&self) -> f64 {
        self.quantile_us(0.99)
    }

    /// Mean observation in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// The histogram of observations recorded between `earlier` and `self`
    /// (`self` being the newer snapshot): per-bucket, sum and count
    /// saturating differences. A series that reset between the snapshots
    /// clamps to zero instead of underflowing; missing buckets (an empty
    /// default snapshot) count as zero. This is what windowed p50/p95/p99
    /// in the flight recorder are computed from.
    pub fn saturating_diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let n = self.bucket_counts.len().max(earlier.bucket_counts.len());
        let at = |v: &[u64], i: usize| v.get(i).copied().unwrap_or(0);
        HistogramSnapshot {
            bucket_counts: (0..n)
                .map(|i| at(&self.bucket_counts, i).saturating_sub(at(&earlier.bucket_counts, i)))
                .collect(),
            sum_us: self.sum_us.saturating_sub(earlier.sum_us),
            count: self.count.saturating_sub(earlier.count),
        }
    }
}

/// A `(metric name, label value, segment)` triple; the label is by
/// convention the collection (or pool) name, `""` for process-wide series,
/// and `segment` is set only for segment-granular series such as the
/// bufferpool hit/miss/eviction counters.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key {
    pub name: String,
    pub label: String,
    pub segment: Option<u64>,
}

impl Key {
    fn new(name: &str, label: &str) -> Self {
        Key { name: name.to_string(), label: label.to_string(), segment: None }
    }

    fn with_segment(name: &str, label: &str, segment: u64) -> Self {
        Key { name: name.to_string(), label: label.to_string(), segment: Some(segment) }
    }
}

/// Lock-light metric registry. Handle lookup takes a read lock; recording
/// through a handle is purely atomic.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<HashMap<Key, Arc<Counter>>>,
    gauges: RwLock<HashMap<Key, Arc<Gauge>>>,
    histograms: RwLock<HashMap<Key, Arc<Histogram>>>,
}

fn get_or_insert<T: Default>(map: &RwLock<HashMap<Key, Arc<T>>>, key: Key) -> Arc<T> {
    if let Some(found) = map.read().expect("metrics lock").get(&key) {
        return Arc::clone(found);
    }
    let mut write = map.write().expect("metrics lock");
    Arc::clone(write.entry(key).or_default())
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Counter handle for `(name, label)`, creating the series on first use.
    pub fn counter(&self, name: &str, label: &str) -> Arc<Counter> {
        get_or_insert(&self.counters, Key::new(name, label))
    }

    /// Counter handle for a segment-granular series.
    pub fn counter_seg(&self, name: &str, label: &str, segment: u64) -> Arc<Counter> {
        get_or_insert(&self.counters, Key::with_segment(name, label, segment))
    }

    /// Gauge handle for `(name, label)`.
    pub fn gauge(&self, name: &str, label: &str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, Key::new(name, label))
    }

    /// Gauge handle for a segment-granular series.
    pub fn gauge_seg(&self, name: &str, label: &str, segment: u64) -> Arc<Gauge> {
        get_or_insert(&self.gauges, Key::with_segment(name, label, segment))
    }

    /// Histogram handle for `(name, label)`.
    pub fn histogram(&self, name: &str, label: &str) -> Arc<Histogram> {
        get_or_insert(&self.histograms, Key::new(name, label))
    }

    /// Start an RAII span over `histogram(name, label)`; elapsed time is
    /// recorded when the guard drops.
    pub fn span(&self, name: &str, label: &str) -> SpanTimer {
        SpanTimer { histogram: self.histogram(name, label), start: Instant::now() }
    }

    /// Immutable copy of every series.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .expect("metrics lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .expect("metrics lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .expect("metrics lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Prometheus text exposition (`GET /metrics` body).
    pub fn render_prometheus(&self) -> String {
        render::render_prometheus(&self.snapshot())
    }
}

/// RAII guard recording elapsed wall time into a histogram on drop.
pub struct SpanTimer {
    histogram: Arc<Histogram>,
    start: Instant,
}

impl SpanTimer {
    /// Elapsed time so far, without ending the span.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        self.histogram.observe_us(self.start.elapsed().as_micros() as u64);
    }
}

/// Point-in-time copy of a [`Registry`], ordered for stable iteration.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    pub counters: std::collections::BTreeMap<Key, u64>,
    pub gauges: std::collections::BTreeMap<Key, i64>,
    pub histograms: std::collections::BTreeMap<Key, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counter value, 0 if the series does not exist.
    pub fn counter(&self, name: &str, label: &str) -> u64 {
        self.counters.get(&Key::new(name, label)).copied().unwrap_or(0)
    }

    /// Segment-granular counter value, 0 if the series does not exist.
    pub fn counter_segment(&self, name: &str, label: &str, segment: u64) -> u64 {
        self.counters.get(&Key::with_segment(name, label, segment)).copied().unwrap_or(0)
    }

    /// Segment-granular gauge value, 0 if the series does not exist.
    pub fn gauge_segment(&self, name: &str, label: &str, segment: u64) -> i64 {
        self.gauges.get(&Key::with_segment(name, label, segment)).copied().unwrap_or(0)
    }

    /// Sum of a counter family across all labels.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters.iter().filter(|(k, _)| k.name == name).map(|(_, v)| v).sum()
    }

    /// Gauge value, 0 if the series does not exist.
    pub fn gauge(&self, name: &str, label: &str) -> i64 {
        self.gauges.get(&Key::new(name, label)).copied().unwrap_or(0)
    }

    /// Histogram snapshot, empty if the series does not exist.
    pub fn histogram(&self, name: &str, label: &str) -> HistogramSnapshot {
        self.histograms.get(&Key::new(name, label)).cloned().unwrap_or_default()
    }
}

/// The process-global registry all system crates record into.
pub fn registry() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Convenience: `registry().counter(...)`.
pub fn counter(name: &str, label: &str) -> Arc<Counter> {
    registry().counter(name, label)
}

/// Convenience: `registry().gauge(...)`.
pub fn gauge(name: &str, label: &str) -> Arc<Gauge> {
    registry().gauge(name, label)
}

/// Convenience: `registry().histogram(...)`.
pub fn histogram(name: &str, label: &str) -> Arc<Histogram> {
    registry().histogram(name, label)
}

/// Convenience: `registry().span(...)`.
pub fn span(name: &str, label: &str) -> SpanTimer {
    registry().span(name, label)
}

// ---------------------------------------------------------------------------
// Metric name constants, so call sites and tests cannot drift apart.
// ---------------------------------------------------------------------------

/// Query latency histogram (per collection).
pub const QUERY_LATENCY: &str = "milvus_query_latency_seconds";
/// Queries served (per collection).
pub const QUERY_TOTAL: &str = "milvus_query_total";
/// Query failures (per collection).
pub const QUERY_ERRORS: &str = "milvus_query_errors_total";
/// Effective nprobe used by IVF searches (per collection, counter of probes).
pub const QUERY_NPROBE_EFFECTIVE: &str = "milvus_query_nprobe_effective_total";
/// Effective ef used by HNSW searches (per collection, counter).
pub const QUERY_EF_EFFECTIVE: &str = "milvus_query_ef_effective_total";
/// Rows accepted by insert (per collection).
pub const INGEST_ROWS: &str = "milvus_ingest_rows_total";
/// Insert batches accepted (per collection).
pub const INGEST_BATCHES: &str = "milvus_ingest_batches_total";
/// Insert latency histogram (per collection).
pub const INGEST_LATENCY: &str = "milvus_ingest_latency_seconds";
/// Entities deleted (per collection).
pub const DELETE_ROWS: &str = "milvus_delete_rows_total";
/// flush() barrier latency (per collection).
pub const FLUSH_LATENCY: &str = "milvus_flush_latency_seconds";
/// WAL records appended (process-wide; storage layer).
pub const WAL_APPENDS: &str = "milvus_wal_appends_total";
/// WAL bytes appended.
pub const WAL_BYTES: &str = "milvus_wal_bytes_total";
/// Memtable flushes to segments.
pub const MEMTABLE_FLUSHES: &str = "milvus_memtable_flushes_total";
/// Memtable flush latency.
pub const MEMTABLE_FLUSH_LATENCY: &str = "milvus_memtable_flush_latency_seconds";
/// Segment merges (compactions) completed.
pub const COMPACTIONS: &str = "milvus_compactions_total";
/// Compaction latency.
pub const COMPACTION_LATENCY: &str = "milvus_compaction_latency_seconds";
/// Current live segment count (gauge).
pub const SEGMENTS: &str = "milvus_segments";
/// Index builds completed (per collection).
pub const INDEX_BUILDS: &str = "milvus_index_builds_total";
/// Index build latency.
pub const INDEX_BUILD_LATENCY: &str = "milvus_index_build_latency_seconds";
/// Object-store put calls.
pub const OBJECT_PUTS: &str = "milvus_object_store_put_total";
/// Object-store get calls.
pub const OBJECT_GETS: &str = "milvus_object_store_get_total";
/// Object-store bytes written.
pub const OBJECT_PUT_BYTES: &str = "milvus_object_store_put_bytes_total";
/// Object-store bytes read.
pub const OBJECT_GET_BYTES: &str = "milvus_object_store_get_bytes_total";
/// Object-store put/get failures (includes injected faults).
pub const OBJECT_ERRORS: &str = "milvus_object_store_errors_total";
/// Batch-engine queries executed through the cache-aware engine.
pub const BATCH_QUERIES: &str = "milvus_batch_engine_queries_total";
/// Batch-engine batch latency.
pub const BATCH_LATENCY: &str = "milvus_batch_engine_latency_seconds";
/// Log records shipped by the distributed writer.
pub const LOG_SHIP_RECORDS: &str = "milvus_log_ship_records_total";
/// Log records applied by distributed readers.
pub const LOG_APPLY_RECORDS: &str = "milvus_log_apply_records_total";
/// Distributed reader refreshes.
pub const READER_REFRESHES: &str = "milvus_reader_refreshes_total";
/// Queries elected by the trace sampler (process-wide).
pub const TRACES_SAMPLED: &str = "milvus_traces_sampled_total";
/// Spans recorded into sampled traces (process-wide).
pub const TRACE_SPANS: &str = "milvus_trace_spans_total";
/// Queries whose latency exceeded the slow threshold (per collection).
pub const SLOW_QUERIES: &str = "milvus_slow_queries_total";
/// Bufferpool requests served from cache (per pool, and per pool+segment).
pub const POOL_HITS: &str = "milvus_bufferpool_hits_total";
/// Bufferpool requests that invoked the loader (per pool, and per
/// pool+segment).
pub const POOL_MISSES: &str = "milvus_bufferpool_misses_total";
/// Segments evicted by the bufferpool (per pool, and per pool+segment).
pub const POOL_EVICTIONS: &str = "milvus_bufferpool_evictions_total";
/// Bytes currently resident in the bufferpool (per pool, and per
/// pool+segment).
pub const POOL_RESIDENT_BYTES: &str = "milvus_bufferpool_resident_bytes";
/// Tasks executed by a work-stealing executor (per pool).
pub const EXEC_TASKS: &str = "milvus_exec_tasks_total";
/// Tasks a thread took from a deque it does not own (per pool).
pub const EXEC_STEALS: &str = "milvus_exec_steals_total";
/// Tasks currently queued across an executor's deques (per pool).
pub const EXEC_QUEUE_DEPTH: &str = "milvus_exec_queue_depth";
/// Workers currently executing a task (per pool); utilization is
/// `workers_busy / workers`.
pub const EXEC_WORKERS_BUSY: &str = "milvus_exec_workers_busy";
/// Worker threads in the pool (per pool).
pub const EXEC_WORKERS: &str = "milvus_exec_workers";
/// Messages offered to the network transport (per link).
pub const NET_SENT: &str = "milvus_net_sent_total";
/// Messages lost to injected loss or a partition (per link).
pub const NET_DROPPED: &str = "milvus_net_dropped_total";
/// Messages delivered with injected latency (per link).
pub const NET_DELAYED: &str = "milvus_net_delayed_total";
/// Messages delivered more than once (per link).
pub const NET_DUPLICATED: &str = "milvus_net_duplicated_total";
/// One-way messages held back and replayed out of order (per link).
pub const NET_REORDERED: &str = "milvus_net_reordered_total";
/// RPC attempts re-sent after a timeout (per link).
pub const NET_RETRIES: &str = "milvus_net_retries_total";
/// RPC attempts that timed out (per link).
pub const NET_TIMEOUTS: &str = "milvus_net_timeouts_total";
/// Shards re-fanned to a surviving reader after a reader became
/// unreachable (cluster-wide).
pub const NET_FAILOVERS: &str = "milvus_net_failovers_total";
/// 1 when the link is up, 0 while partitioned (per link).
pub const NET_LINK_UP: &str = "milvus_net_link_up";
/// Injected loss probability of the link in parts per million (per link).
pub const NET_LINK_LOSS_PPM: &str = "milvus_net_link_loss_ppm";
/// Accumulated virtual time (timeouts, backoff, injected delays) of a
/// simulated network, in microseconds.
pub const NET_VIRTUAL_TIME_US: &str = "milvus_net_virtual_time_us";
/// Query-scheduler: size of each coalesced batch handed to the batch
/// engines (per collection; bucket value = queries in the batch).
pub const SCHED_BATCH_SIZE: &str = "milvus_sched_batch_size";
/// Query-scheduler: coalesced batches executed (per collection).
pub const SCHED_COALESCED_BATCHES: &str = "milvus_sched_coalesced_batches_total";
/// Query-scheduler: queries served through a coalesced batch (per
/// collection).
pub const SCHED_COALESCED_QUERIES: &str = "milvus_sched_coalesced_queries_total";
/// Query-scheduler: queries currently admitted and executing (per
/// collection).
pub const SCHED_INFLIGHT: &str = "milvus_sched_inflight";
/// Query-scheduler: queries that bypassed the coalescing window because no
/// other query was pending (per collection).
pub const SCHED_PASSTHROUGH: &str = "milvus_sched_passthrough_total";
/// Query-scheduler: queries shed by admission control with a typed
/// overload error (per collection).
pub const SCHED_SHED: &str = "milvus_sched_shed_total";
/// Distributed searches that completed with at least one uncovered shard
/// (per cluster).
pub const SEARCH_DEGRADED: &str = "milvus_search_degraded_total";
/// Shard coverage of the most recent distributed search, in parts per
/// million (1_000_000 = every shard contributed results).
pub const SEARCH_COVERAGE_RATIO: &str = "milvus_search_coverage_ratio";
/// Automated writer failovers: a standby was promoted after the active
/// writer became unreachable (per cluster).
pub const WRITER_FAILOVERS: &str = "milvus_writer_failovers_total";
/// Shipped log records replayed by a standby writer during takeover.
pub const WRITER_REPLAYED_RECORDS: &str = "milvus_writer_replayed_records_total";
/// Inserts skipped because their client op id was already applied (client
/// retry after a lost ack, or a replay of an already-materialized record).
pub const WRITER_DEDUPED_OPS: &str = "milvus_writer_deduped_ops_total";
/// 1 while an active writer is serving ingest; 0 from the moment an outage
/// is detected until a standby finishes takeover.
pub const WRITER_UP: &str = "milvus_writer_up";
/// Generation (term) of the current writer: 0 for the original instance,
/// bumped by every takeover.
pub const WRITER_TAKEOVER_GENERATION: &str = "milvus_writer_takeover_generation";
/// Log sequence number up to which the most recent takeover replayed.
pub const WRITER_TAKEOVER_REPLAY_LSN: &str = "milvus_writer_takeover_replay_lsn";

// ---------------------------------------------------------------------------
// Declared metric families: name, type and HELP text. The Prometheus render
// always emits HELP/TYPE for every declared family — even before the first
// observation — so dashboards never see series flap in and out of existence.
// ---------------------------------------------------------------------------

/// Prometheus metric type of a declared family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    /// The `# TYPE` keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A declared metric family.
#[derive(Debug, Clone, Copy)]
pub struct FamilyDesc {
    pub name: &'static str,
    pub kind: MetricKind,
    pub help: &'static str,
}

/// Every metric family this workspace records, sorted by name.
pub const FAMILIES: &[FamilyDesc] = &[
    FamilyDesc { name: BATCH_LATENCY, kind: MetricKind::Histogram, help: "Batch-engine batch latency." },
    FamilyDesc { name: BATCH_QUERIES, kind: MetricKind::Counter, help: "Queries executed through the batch engines." },
    FamilyDesc { name: POOL_EVICTIONS, kind: MetricKind::Counter, help: "Segments evicted by the bufferpool." },
    FamilyDesc { name: POOL_HITS, kind: MetricKind::Counter, help: "Bufferpool requests served from cache." },
    FamilyDesc { name: POOL_MISSES, kind: MetricKind::Counter, help: "Bufferpool requests that invoked the loader." },
    FamilyDesc { name: POOL_RESIDENT_BYTES, kind: MetricKind::Gauge, help: "Bytes currently resident in the bufferpool." },
    FamilyDesc { name: COMPACTION_LATENCY, kind: MetricKind::Histogram, help: "Segment compaction latency." },
    FamilyDesc { name: COMPACTIONS, kind: MetricKind::Counter, help: "Segment merges (compactions) completed." },
    FamilyDesc { name: DELETE_ROWS, kind: MetricKind::Counter, help: "Entities deleted." },
    FamilyDesc { name: EXEC_QUEUE_DEPTH, kind: MetricKind::Gauge, help: "Tasks currently queued across an executor's deques." },
    FamilyDesc { name: EXEC_STEALS, kind: MetricKind::Counter, help: "Tasks a thread took from an executor deque it does not own." },
    FamilyDesc { name: EXEC_TASKS, kind: MetricKind::Counter, help: "Tasks executed by a work-stealing executor." },
    FamilyDesc { name: EXEC_WORKERS, kind: MetricKind::Gauge, help: "Worker threads in an executor pool." },
    FamilyDesc { name: EXEC_WORKERS_BUSY, kind: MetricKind::Gauge, help: "Executor workers currently executing a task." },
    FamilyDesc { name: FLUSH_LATENCY, kind: MetricKind::Histogram, help: "flush() barrier latency." },
    FamilyDesc { name: INDEX_BUILD_LATENCY, kind: MetricKind::Histogram, help: "Index build latency." },
    FamilyDesc { name: INDEX_BUILDS, kind: MetricKind::Counter, help: "Index builds completed." },
    FamilyDesc { name: INGEST_BATCHES, kind: MetricKind::Counter, help: "Insert batches accepted." },
    FamilyDesc { name: INGEST_LATENCY, kind: MetricKind::Histogram, help: "Insert latency." },
    FamilyDesc { name: INGEST_ROWS, kind: MetricKind::Counter, help: "Rows accepted by insert." },
    FamilyDesc { name: LOG_APPLY_RECORDS, kind: MetricKind::Counter, help: "Log records applied by distributed readers." },
    FamilyDesc { name: LOG_SHIP_RECORDS, kind: MetricKind::Counter, help: "Log records shipped by the distributed writer." },
    FamilyDesc { name: MEMTABLE_FLUSH_LATENCY, kind: MetricKind::Histogram, help: "Memtable flush latency." },
    FamilyDesc { name: MEMTABLE_FLUSHES, kind: MetricKind::Counter, help: "Memtable flushes to segments." },
    FamilyDesc { name: NET_DELAYED, kind: MetricKind::Counter, help: "Messages delivered with injected latency." },
    FamilyDesc { name: NET_DROPPED, kind: MetricKind::Counter, help: "Messages lost to injected loss or a partition." },
    FamilyDesc { name: NET_DUPLICATED, kind: MetricKind::Counter, help: "Messages delivered more than once." },
    FamilyDesc { name: NET_FAILOVERS, kind: MetricKind::Counter, help: "Shards re-fanned to a surviving reader after a reader became unreachable." },
    FamilyDesc { name: NET_LINK_LOSS_PPM, kind: MetricKind::Gauge, help: "Injected loss probability of the link in parts per million." },
    FamilyDesc { name: NET_LINK_UP, kind: MetricKind::Gauge, help: "1 when the link is up, 0 while partitioned." },
    FamilyDesc { name: NET_REORDERED, kind: MetricKind::Counter, help: "One-way messages held back and replayed out of order." },
    FamilyDesc { name: NET_RETRIES, kind: MetricKind::Counter, help: "RPC attempts re-sent after a timeout." },
    FamilyDesc { name: NET_SENT, kind: MetricKind::Counter, help: "Messages offered to the network transport." },
    FamilyDesc { name: NET_TIMEOUTS, kind: MetricKind::Counter, help: "RPC attempts that timed out." },
    FamilyDesc { name: NET_VIRTUAL_TIME_US, kind: MetricKind::Gauge, help: "Accumulated virtual time of a simulated network in microseconds." },
    FamilyDesc { name: OBJECT_ERRORS, kind: MetricKind::Counter, help: "Object-store failures (includes injected faults)." },
    FamilyDesc { name: OBJECT_GET_BYTES, kind: MetricKind::Counter, help: "Object-store bytes read." },
    FamilyDesc { name: OBJECT_GETS, kind: MetricKind::Counter, help: "Object-store get calls." },
    FamilyDesc { name: OBJECT_PUT_BYTES, kind: MetricKind::Counter, help: "Object-store bytes written." },
    FamilyDesc { name: OBJECT_PUTS, kind: MetricKind::Counter, help: "Object-store put calls." },
    FamilyDesc { name: QUERY_EF_EFFECTIVE, kind: MetricKind::Counter, help: "Effective ef used by HNSW searches." },
    FamilyDesc { name: QUERY_ERRORS, kind: MetricKind::Counter, help: "Query failures." },
    FamilyDesc { name: QUERY_LATENCY, kind: MetricKind::Histogram, help: "Query latency." },
    FamilyDesc { name: QUERY_NPROBE_EFFECTIVE, kind: MetricKind::Counter, help: "Effective nprobe used by IVF searches." },
    FamilyDesc { name: QUERY_TOTAL, kind: MetricKind::Counter, help: "Queries served." },
    FamilyDesc { name: READER_REFRESHES, kind: MetricKind::Counter, help: "Distributed reader refreshes." },
    FamilyDesc { name: SCHED_BATCH_SIZE, kind: MetricKind::Histogram, help: "Queries per coalesced scheduler batch." },
    FamilyDesc { name: SCHED_COALESCED_BATCHES, kind: MetricKind::Counter, help: "Coalesced batches executed by the query scheduler." },
    FamilyDesc { name: SCHED_COALESCED_QUERIES, kind: MetricKind::Counter, help: "Queries served through a coalesced scheduler batch." },
    FamilyDesc { name: SCHED_INFLIGHT, kind: MetricKind::Gauge, help: "Queries currently admitted by the scheduler and executing." },
    FamilyDesc { name: SCHED_PASSTHROUGH, kind: MetricKind::Counter, help: "Queries that bypassed the coalescing window (no other query pending)." },
    FamilyDesc { name: SCHED_SHED, kind: MetricKind::Counter, help: "Queries shed by scheduler admission control with a typed overload error." },
    FamilyDesc { name: SEARCH_COVERAGE_RATIO, kind: MetricKind::Gauge, help: "Shard coverage of the most recent distributed search in parts per million (1000000 = full coverage)." },
    FamilyDesc { name: SEARCH_DEGRADED, kind: MetricKind::Counter, help: "Distributed searches that completed with at least one uncovered shard." },
    FamilyDesc { name: SEGMENTS, kind: MetricKind::Gauge, help: "Live segment count of the current snapshot." },
    FamilyDesc { name: SLOW_QUERIES, kind: MetricKind::Counter, help: "Queries whose latency exceeded the slow threshold." },
    FamilyDesc { name: TRACE_SPANS, kind: MetricKind::Counter, help: "Spans recorded into sampled traces." },
    FamilyDesc { name: TRACES_SAMPLED, kind: MetricKind::Counter, help: "Queries elected by the trace sampler." },
    FamilyDesc { name: WAL_APPENDS, kind: MetricKind::Counter, help: "WAL records appended." },
    FamilyDesc { name: WAL_BYTES, kind: MetricKind::Counter, help: "WAL bytes appended." },
    FamilyDesc { name: WRITER_DEDUPED_OPS, kind: MetricKind::Counter, help: "Inserts skipped because their client op id was already applied." },
    FamilyDesc { name: WRITER_FAILOVERS, kind: MetricKind::Counter, help: "Automated writer failovers (standby promoted after the active writer became unreachable)." },
    FamilyDesc { name: WRITER_REPLAYED_RECORDS, kind: MetricKind::Counter, help: "Shipped log records replayed by a standby writer during takeover." },
    FamilyDesc { name: WRITER_TAKEOVER_GENERATION, kind: MetricKind::Gauge, help: "Generation (term) of the current writer; bumped by every takeover." },
    FamilyDesc { name: WRITER_TAKEOVER_REPLAY_LSN, kind: MetricKind::Gauge, help: "Log sequence number up to which the most recent takeover replayed." },
    FamilyDesc { name: WRITER_UP, kind: MetricKind::Gauge, help: "1 while an active writer serves ingest, 0 during a detected outage until takeover completes." },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let r = Registry::new();
        let c = r.counter(QUERY_TOTAL, "col");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = r.gauge(SEGMENTS, "col");
        g.set(7);
        g.add(-2);
        assert_eq!(g.get(), 5);
        let snap = r.snapshot();
        assert_eq!(snap.counter(QUERY_TOTAL, "col"), 5);
        assert_eq!(snap.gauge(SEGMENTS, "col"), 5);
        assert_eq!(snap.counter(QUERY_TOTAL, "absent"), 0);
    }

    #[test]
    fn same_key_returns_same_series() {
        let r = Registry::new();
        r.counter("x", "a").inc();
        r.counter("x", "a").inc();
        r.counter("x", "b").inc();
        let snap = r.snapshot();
        assert_eq!(snap.counter("x", "a"), 2);
        assert_eq!(snap.counter("x", "b"), 1);
        assert_eq!(snap.counter_total("x"), 3);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        // 100 observations at ~10µs, 10 at ~100ms, 1 at ~10s.
        for _ in 0..100 {
            h.observe_us(10);
        }
        for _ in 0..10 {
            h.observe_us(100_000);
        }
        h.observe_us(10_000_000);
        let s = h.snapshot();
        assert_eq!(s.count, 111);
        assert_eq!(s.sum_us, 100 * 10 + 10 * 100_000 + 10_000_000);
        let p50 = s.p50_us();
        assert!(p50 <= 16.0, "p50={p50}");
        let p99 = s.p99_us();
        assert!(p99 > 50_000.0, "p99={p99}");
        // Monotonic in q.
        assert!(s.quantile_us(0.5) <= s.quantile_us(0.95));
        assert!(s.quantile_us(0.95) <= s.quantile_us(0.999));
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        assert_eq!(HistogramSnapshot::default().quantile_us(0.99), 0.0);
    }

    #[test]
    fn span_timer_records_on_drop() {
        let r = Registry::new();
        {
            let _t = r.span(QUERY_LATENCY, "c");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let s = r.snapshot().histogram(QUERY_LATENCY, "c");
        assert_eq!(s.count, 1);
        assert!(s.sum_us >= 1_000, "sum_us={}", s.sum_us);
    }

    #[test]
    fn concurrent_increments_do_not_lose_updates() {
        let r = Arc::new(Registry::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                let c = r.counter("concurrent", "");
                for _ in 0..10_000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.snapshot().counter("concurrent", ""), 80_000);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a = registry() as *const _;
        let b = registry() as *const _;
        assert_eq!(a, b);
    }
}

//! Flight recorder: a fixed-capacity ring of periodic metric snapshots.
//!
//! Point-in-time counters answer "how many"; the recorder answers *rate* and
//! *trend* questions — "is `milvus_exec_queue_depth` saturated over the last
//! window?", "what was the search p99 in the last minute?" — by retaining a
//! bounded history of whole-registry snapshots ([`WindowFrame`]s) and
//! deriving per-window deltas, rates, and quantiles from bucket differences.
//!
//! Design constraints:
//!
//! - **Lock-light.** The hot path (metric recording) is untouched: the
//!   recorder only *reads* the registry, at tick time, under its own ring
//!   mutex. Nothing on the query path ever waits on the recorder.
//! - **Test-drivable and virtual-clock-compatible.** [`FlightRecorder::tick`]
//!   stamps frames with process uptime; [`FlightRecorder::tick_at`] accepts
//!   an explicit timestamp so tests driving a simulated network can stamp
//!   frames with `SimNet::virtual_time()` and stay fully deterministic.
//!   Nothing ticks implicitly — an HTTP `GET /debug/timeseries` serves
//!   whatever frames exist, it never records one.
//! - **Fixed capacity.** The ring holds [`FlightRecorder::DEFAULT_CAPACITY`]
//!   frames by default; pushing past capacity drops the oldest frame.
//!
//! Windowed histogram quantiles come from *bucket diffs*: subtracting an
//! older frame's per-bucket counts from the newest frame's yields the
//! histogram of exactly the observations recorded inside that window, on
//! which the usual interpolated p50/p95/p99 are computed.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::{registry, HistogramSnapshot, MetricsSnapshot};

/// The process start, fixed on first use; frame timestamps from
/// [`FlightRecorder::tick`] are microseconds since this instant.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process epoch (first call wins the epoch).
pub fn uptime_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// One recorded window boundary: a full registry snapshot plus the
/// timestamp it was taken at (µs since process epoch, or virtual time when
/// recorded via [`FlightRecorder::tick_at`]).
#[derive(Debug, Clone)]
pub struct WindowFrame {
    /// Frame timestamp in microseconds. Monotone within one clock domain.
    pub at_us: u64,
    /// Every counter/gauge/histogram series at `at_us`.
    pub snapshot: MetricsSnapshot,
}

/// Fixed-capacity ring of [`WindowFrame`]s.
pub struct FlightRecorder {
    capacity: AtomicUsize,
    ring: Mutex<VecDeque<Arc<WindowFrame>>>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }
}

impl FlightRecorder {
    /// Default ring capacity: at a 1s tick this retains roughly a minute of
    /// history, which covers the health window and dashboard sparklines
    /// while keeping the ring a few MB even with many series.
    pub const DEFAULT_CAPACITY: usize = 64;

    /// A recorder retaining at most `capacity` frames (floored at 2 — one
    /// frame can never define a window).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            capacity: AtomicUsize::new(capacity.max(2)),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Current ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity.load(Ordering::Relaxed)
    }

    /// Replace the ring capacity (floored at 2), trimming old frames.
    pub fn set_capacity(&self, capacity: usize) {
        let capacity = capacity.max(2);
        self.capacity.store(capacity, Ordering::Relaxed);
        let mut ring = self.ring.lock().expect("flight recorder lock");
        while ring.len() > capacity {
            ring.pop_front();
        }
    }

    /// Record a frame stamped with process uptime. Returns the timestamp.
    pub fn tick(&self) -> u64 {
        let at = uptime_us();
        self.tick_at(at);
        at
    }

    /// Record a frame with an explicit timestamp — the virtual-clock entry
    /// point (`recorder.tick_at(net.virtual_time().as_micros() as u64)`).
    /// Timestamps are taken as given; mixing clock domains in one ring makes
    /// the *rates* meaningless but deltas and windowed quantiles stay exact.
    pub fn tick_at(&self, at_us: u64) {
        let frame = Arc::new(WindowFrame { at_us, snapshot: registry().snapshot() });
        let capacity = self.capacity();
        let mut ring = self.ring.lock().expect("flight recorder lock");
        while ring.len() >= capacity {
            ring.pop_front();
        }
        ring.push_back(frame);
    }

    /// Frames currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("flight recorder lock").len()
    }

    /// True when no frame has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The most recent frame, if any.
    pub fn newest(&self) -> Option<Arc<WindowFrame>> {
        self.ring.lock().expect("flight recorder lock").back().cloned()
    }

    /// Drop all frames (tests).
    pub fn clear(&self) {
        self.ring.lock().expect("flight recorder lock").clear();
    }

    /// Copy of the ring as a queryable report, oldest frame first.
    pub fn report(&self) -> TimeSeriesReport {
        TimeSeriesReport {
            frames: self.ring.lock().expect("flight recorder lock").iter().cloned().collect(),
            capacity: self.capacity(),
        }
    }

    /// Spawn a background thread ticking every `interval` until the returned
    /// driver is dropped. Production convenience; tests tick explicitly.
    pub fn start_periodic(&'static self, interval: Duration) -> RecorderDriver {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("milvus-flight-recorder".into())
            .spawn(move || {
                while !flag.load(Ordering::SeqCst) {
                    std::thread::sleep(interval);
                    if flag.load(Ordering::SeqCst) {
                        break;
                    }
                    self.tick();
                }
            })
            .expect("spawn flight recorder thread");
        RecorderDriver { stop, handle: Some(handle) }
    }
}

/// Handle owning the periodic tick thread; dropping it stops the ticks.
pub struct RecorderDriver {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for RecorderDriver {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// The process-global flight recorder `Milvus::timeseries()` and
/// `GET /debug/timeseries` read from.
pub fn flight_recorder() -> &'static FlightRecorder {
    static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();
    GLOBAL.get_or_init(FlightRecorder::default)
}

/// An immutable copy of the recorder ring with the windowed-derivation
/// helpers. `lookback` counts windows back from the newest frame: 1 is the
/// most recent window (newest vs. previous frame), `len()-1` spans the whole
/// ring. Lookbacks past the oldest frame clamp to the oldest.
#[derive(Clone)]
pub struct TimeSeriesReport {
    /// Retained frames, oldest first.
    pub frames: Vec<Arc<WindowFrame>>,
    /// Ring capacity at snapshot time.
    pub capacity: usize,
}

impl TimeSeriesReport {
    /// Frames retained.
    pub fn windows(&self) -> usize {
        self.frames.len()
    }

    /// The newest and the `lookback`-older frame, when both exist.
    fn pair(&self, lookback: usize) -> Option<(&WindowFrame, &WindowFrame)> {
        let newest = self.frames.last()?;
        if self.frames.len() < 2 {
            return None;
        }
        let idx = (self.frames.len() - 1).saturating_sub(lookback.max(1));
        Some((&self.frames[idx], newest))
    }

    /// Window span in microseconds (0 when fewer than two frames exist or
    /// the timestamps are not increasing).
    pub fn window_us(&self, lookback: usize) -> u64 {
        self.pair(lookback).map_or(0, |(a, b)| b.at_us.saturating_sub(a.at_us))
    }

    /// Counter increase across the window (0 with fewer than two frames).
    pub fn counter_delta(&self, name: &str, label: &str, lookback: usize) -> u64 {
        self.pair(lookback).map_or(0, |(a, b)| {
            b.snapshot.counter(name, label).saturating_sub(a.snapshot.counter(name, label))
        })
    }

    /// Counter rate in events/second across the window; 0 when the window
    /// has no duration (virtual clocks that did not advance included).
    pub fn counter_rate_per_sec(&self, name: &str, label: &str, lookback: usize) -> f64 {
        let dt_us = self.window_us(lookback);
        if dt_us == 0 {
            return 0.0;
        }
        self.counter_delta(name, label, lookback) as f64 / (dt_us as f64 / 1e6)
    }

    /// Gauge value in the newest frame (0 when no frame exists).
    pub fn gauge_last(&self, name: &str, label: &str) -> i64 {
        self.frames.last().map_or(0, |f| f.snapshot.gauge(name, label))
    }

    /// The histogram of exactly the observations recorded inside the
    /// window: newest frame's buckets minus the older frame's, per bucket.
    /// Empty (count 0) with fewer than two frames.
    pub fn windowed_histogram(&self, name: &str, label: &str, lookback: usize) -> HistogramSnapshot {
        self.pair(lookback).map_or_else(HistogramSnapshot::default, |(a, b)| {
            b.snapshot.histogram(name, label).saturating_diff(&a.snapshot.histogram(name, label))
        })
    }

    /// Interpolated quantile of the windowed histogram, in microseconds.
    pub fn windowed_quantile_us(&self, name: &str, label: &str, lookback: usize, q: f64) -> f64 {
        self.windowed_histogram(name, label, lookback).quantile_us(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{render_prometheus, BUCKET_BOUNDS_US};

    /// The bucket index an observation of `us` lands in (last = +Inf).
    fn bucket_of(us: f64) -> usize {
        BUCKET_BOUNDS_US
            .iter()
            .position(|&b| us <= b as f64)
            .unwrap_or(BUCKET_BOUNDS_US.len())
    }

    #[test]
    fn empty_window_yields_empty_histogram_and_zero_quantiles() {
        let rec = FlightRecorder::with_capacity(8);
        // No frames at all.
        let r = rec.report();
        assert_eq!(r.windows(), 0);
        assert_eq!(r.windowed_histogram("h", "none", 1).count, 0);
        assert_eq!(r.windowed_quantile_us("h", "none", 1, 0.99), 0.0);
        assert_eq!(r.counter_delta("c", "none", 1), 0);
        // One frame: still no window.
        rec.tick_at(10);
        let r = rec.report();
        assert_eq!(r.windows(), 1);
        assert_eq!(r.window_us(1), 0);
        assert_eq!(r.windowed_histogram("h", "none", 1).count, 0);
        // Two frames with no observations in between: empty but defined.
        rec.tick_at(20);
        let r = rec.report();
        assert_eq!(r.window_us(1), 10);
        assert_eq!(r.windowed_histogram("h", "none", 1).count, 0);
        assert_eq!(r.windowed_quantile_us("h", "none", 1, 0.5), 0.0);
    }

    #[test]
    fn single_bucket_window_quantiles_interpolate_within_the_bucket() {
        let label = "rec_single_bucket";
        let rec = FlightRecorder::with_capacity(8);
        rec.tick_at(0);
        // All observations land in one bucket (65_536µs < 100_000 ≤ 262_144).
        let h = registry().histogram("rec_hist", label);
        for _ in 0..10 {
            h.observe_us(100_000);
        }
        rec.tick_at(1_000_000);
        let r = rec.report();
        let w = r.windowed_histogram("rec_hist", label, 1);
        assert_eq!(w.count, 10);
        assert_eq!(w.bucket_counts.iter().filter(|&&c| c > 0).count(), 1);
        for q in [0.5, 0.95, 0.99] {
            let v = w.quantile_us(q);
            assert!(
                (65_536.0..=262_144.0).contains(&v),
                "q={q} escaped its bucket: {v}"
            );
        }
        assert_eq!(bucket_of(w.p99_us()), bucket_of(100_000.0));
    }

    #[test]
    fn window_excludes_observations_before_the_older_frame() {
        let label = "rec_window_excl";
        let h = registry().histogram("rec_hist", label);
        // History before the ring: must not appear in any window.
        for _ in 0..50 {
            h.observe_us(10);
        }
        let rec = FlightRecorder::with_capacity(8);
        rec.tick_at(0);
        for _ in 0..7 {
            h.observe_us(1_000_000);
        }
        rec.tick_at(1_000);
        let r = rec.report();
        let w = r.windowed_histogram("rec_hist", label, 1);
        assert_eq!(w.count, 7, "window must only contain in-window observations");
        assert!(w.quantile_us(0.5) > 262_144.0, "old 10µs points leaked in");
    }

    #[test]
    fn ring_wraps_at_capacity_and_windows_stay_consistent() {
        let label = "rec_wrap";
        let rec = FlightRecorder::with_capacity(4);
        let c = registry().counter("rec_ctr", label);
        let h = registry().histogram("rec_hist", label);
        for i in 0..10u64 {
            c.add(2);
            h.observe_us(1 << (i % 12));
            rec.tick_at(i * 100);
        }
        assert_eq!(rec.len(), 4, "ring must hold exactly its capacity");
        let r = rec.report();
        // Only the last 4 frames survive, timestamps monotone.
        let ats: Vec<u64> = r.frames.iter().map(|f| f.at_us).collect();
        assert_eq!(ats, vec![600, 700, 800, 900]);
        // Adjacent window: exactly one tick's worth of counter increments.
        assert_eq!(r.counter_delta("rec_ctr", label, 1), 2);
        // Full-ring window: three windows' worth.
        assert_eq!(r.counter_delta("rec_ctr", label, 99), 6);
        assert_eq!(r.windowed_histogram("rec_hist", label, 99).count, 3);
        // Rates use the frame timestamps.
        let rate = r.counter_rate_per_sec("rec_ctr", label, 1);
        assert!((rate - 2.0 / 100e-6).abs() < 1e-6, "rate={rate}");
    }

    #[test]
    fn windowed_quantiles_are_monotone() {
        let label = "rec_monotone";
        let rec = FlightRecorder::with_capacity(8);
        rec.tick_at(0);
        let h = registry().histogram("rec_hist", label);
        for i in 0..200u64 {
            h.observe_us(1 + i * 37); // spread across several buckets
        }
        rec.tick_at(500);
        let r = rec.report();
        let w = r.windowed_histogram("rec_hist", label, 1);
        assert_eq!(w.count, 200);
        let (p50, p95, p99) = (w.p50_us(), w.p95_us(), w.p99_us());
        assert!(p50 <= p95 && p95 <= p99, "p50={p50} p95={p95} p99={p99}");
        assert!(p50 > 0.0);
    }

    #[test]
    fn diffed_snapshot_renders_with_prometheus_invariants_intact() {
        // Satellite regression: after bucket-diffing, the rendered
        // exposition must still satisfy +Inf-cumulative == _count and carry
        // a _sum line consistent with the diff.
        let label = "rec_render_diff";
        let rec = FlightRecorder::with_capacity(4);
        let h = registry().histogram(crate::QUERY_LATENCY, label);
        h.observe_us(10);
        h.observe_us(100_000);
        rec.tick_at(0);
        h.observe_us(20);
        h.observe_us(2_000);
        h.observe_us(30_000_000); // +Inf bucket
        rec.tick_at(100);
        let r = rec.report();
        let w = r.windowed_histogram(crate::QUERY_LATENCY, label, 1);
        assert_eq!(w.count, 3);
        assert_eq!(w.sum_us, 20 + 2_000 + 30_000_000);
        // Per-bucket counts must sum to the count (diff kept them aligned).
        assert_eq!(w.bucket_counts.iter().sum::<u64>(), w.count);

        // Render a snapshot holding only the diffed histogram.
        let mut snap = MetricsSnapshot::default();
        snap.histograms.insert(
            crate::Key { name: crate::QUERY_LATENCY.into(), label: label.into(), segment: None },
            w.clone(),
        );
        let text = render_prometheus(&snap);
        let inf_line = text
            .lines()
            .find(|l| l.contains(label) && l.contains("le=\"+Inf\""))
            .expect("+Inf bucket rendered");
        let inf: u64 = inf_line.rsplit(' ').next().unwrap().parse().unwrap();
        let count_line = text
            .lines()
            .find(|l| l.starts_with(&format!("{}_count", crate::QUERY_LATENCY)) && l.contains(label))
            .expect("_count rendered");
        let count: u64 = count_line.rsplit(' ').next().unwrap().parse().unwrap();
        assert_eq!(inf, count, "cumulative +Inf must equal _count after diffing");
        assert_eq!(count, 3);
        let sum_line = text
            .lines()
            .find(|l| l.starts_with(&format!("{}_sum", crate::QUERY_LATENCY)) && l.contains(label))
            .expect("_sum rendered");
        let sum: f64 = sum_line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!((sum - (w.sum_us as f64 / 1e6)).abs() < 1e-9, "sum={sum}");
    }

    #[test]
    fn capacity_shrink_trims_oldest() {
        let rec = FlightRecorder::with_capacity(8);
        for i in 0..8 {
            rec.tick_at(i);
        }
        rec.set_capacity(3);
        assert_eq!(rec.len(), 3);
        let r = rec.report();
        assert_eq!(r.frames.first().unwrap().at_us, 5);
    }
}

//! E-commerce attribute filtering (paper §1/§4.1): "finding the T-shirts
//! similar to a given image vector that also cost less than $100".
//! Demonstrates all five filtering strategies, the cost-based planner's
//! choices across selectivities, and the partition-based speedup.
//!
//! Run with: `cargo run --release -p milvus-examples --bin ecommerce_filtering`

use milvus_datagen as datagen;
use milvus_index::registry::IndexRegistry;
use milvus_index::traits::{BuildParams, SearchParams};
use milvus_index::Metric;
use milvus_query::filtering::{FilterDataset, PartitionedDataset, RangePredicate, Strategy};
use std::time::Instant;

fn main() {
    // Product catalog: 50k items with an image embedding and a price.
    let n = 50_000;
    let embeddings = datagen::sift_like(n, 3003);
    let ids: Vec<i64> = (0..n as i64).collect();
    let prices = datagen::attributes_uniform(n, 0.0, 500.0, 3004);

    let registry = IndexRegistry::with_builtins();
    let params = BuildParams { nlist: 256, kmeans_iters: 5, ..Default::default() };
    let catalog = FilterDataset::build(
        Metric::L2,
        embeddings.clone(),
        ids.clone(),
        prices.clone(),
        "price",
        "IVF_FLAT",
        &registry,
        &params,
    )
    .expect("build catalog");

    // Partitioned by price — the attribute every query filters on (§4.1 E).
    let partitioned = PartitionedDataset::build(
        Metric::L2, &embeddings, &ids, &prices, "price", 10, "IVF_FLAT", &registry, &params,
    )
    .expect("partition catalog");

    let query_image = datagen::queries_from(&embeddings, 1, 2.0, 3005);
    let query = query_image.get(0);
    let sp = SearchParams { k: 10, nprobe: 16, ..Default::default() };

    // "Similar shirts under $100".
    let under_100 = RangePredicate::new(0.0, 100.0);
    println!("similar items priced under $100 (strategy D, cost-based):");
    let (hits, trace) = catalog.search(query, under_100, &sp, Strategy::D).expect("search");
    println!("  planner chose {:?}", trace.resolved);
    for h in hits.iter().take(5) {
        println!("  item #{:<6} L2²={:.1}", h.id, h.dist);
    }

    // The planner adapts to selectivity.
    println!("\nplanner choices by price range:");
    for (label, hi) in [("< $5", 5.0), ("< $100", 100.0), ("< $400", 400.0), ("any", 500.0)] {
        let pred = RangePredicate::new(0.0, hi);
        let choice = catalog.plan(pred, &sp);
        println!(
            "  price {label:<7} selectivity={:.2} → strategy {choice:?}",
            catalog.selectivity(pred)
        );
    }

    // Strategy comparison on one query.
    println!("\nstrategy timings for 'under $100' (100 queries):");
    let queries = datagen::queries_from(&embeddings, 100, 2.0, 3006);
    for strat in [Strategy::A, Strategy::B, Strategy::C, Strategy::D] {
        let t = Instant::now();
        for i in 0..queries.len() {
            catalog.search(queries.get(i), under_100, &sp, strat).expect("search");
        }
        println!("  {strat:?}: {:?}", t.elapsed());
    }
    let t = Instant::now();
    for i in 0..queries.len() {
        partitioned.search(queries.get(i), under_100, &sp).expect("search");
    }
    println!("  E (partition-based): {:?}", t.elapsed());

    // Partition pruning in action.
    let (_, trace) = partitioned.search(query, under_100, &sp).expect("search");
    println!(
        "\npartition-based execution: {} of {} partitions scanned, {} fully covered \
         (attribute check skipped)",
        trace.partitions_scanned,
        partitioned.rho(),
        trace.partitions_covered
    );
}

//! Recipe–food search (paper §4.2/§7.6): every recipe is described by two
//! vectors — a text embedding of its description and an image embedding of
//! the dish. A multi-vector query scores recipes by a weighted sum over both
//! similarities. Compares the naive approach, iterative merging
//! (Algorithm 2) and vector fusion.
//!
//! Run with: `cargo run --release -p milvus-examples --bin multi_vector_recipe`

use milvus_datagen as datagen;
use milvus_index::registry::IndexRegistry;
use milvus_index::traits::{BuildParams, SearchParams};
use milvus_index::Metric;
use milvus_query::multivector::MultiVectorEngine;
use std::time::Instant;

fn main() {
    // 30k recipes, each with a text vector (dim 32) and an image vector
    // (dim 24), correlated per cluster ("cuisine").
    let n = 30_000;
    let (text, image) = datagen::recipe_like(n, 32, 24, 4242);
    let ids: Vec<i64> = (0..n as i64).collect();

    let registry = IndexRegistry::with_builtins();
    let params =
        BuildParams { metric: Metric::InnerProduct, nlist: 128, kmeans_iters: 5, ..Default::default() };
    let engine = MultiVectorEngine::build(
        Metric::InnerProduct,
        vec![text.clone(), image.clone()],
        ids,
        vec![0.7, 0.3], // text matters more than the photo
        "IVF_FLAT",
        &registry,
        &params,
        true, // build the fusion index (inner product is decomposable)
    )
    .expect("build engine");

    // A user query: "something like this description, looking like this".
    let q_text = text.get(1234).to_vec();
    let q_image = image.get(1234).to_vec();
    let query: Vec<&[f32]> = vec![&q_text, &q_image];
    let sp = SearchParams { k: 10, nprobe: 16, ..Default::default() };

    let exact = engine.exact(&query, 10).expect("exact");
    println!("ground truth top-3: {:?}", &exact.iter().take(3).map(|n| n.id).collect::<Vec<_>>());

    let overlap = |res: &[milvus_index::Neighbor]| {
        let truth: std::collections::HashSet<i64> = exact.iter().map(|n| n.id).collect();
        res.iter().filter(|n| truth.contains(&n.id)).count()
    };

    // Naive per-field top-k: can miss entities good in the aggregate but
    // not in any single field.
    let t = Instant::now();
    let naive = engine.naive(&query, &sp).expect("naive");
    println!("\nnaive:            {:>2}/10 correct in {:?}", overlap(&naive), t.elapsed());

    // Iterative merging (Algorithm 2).
    let t = Instant::now();
    let (img, trace) = engine.iterative_merging(&query, &sp, 4096).expect("img");
    println!(
        "iterative merge:  {:>2}/10 correct in {:?} (rounds={}, final k'={}, determined={})",
        overlap(&img),
        t.elapsed(),
        trace.rounds,
        trace.final_k_prime,
        trace.fully_determined
    );

    // Vector fusion: a single search over concatenated vectors.
    let t = Instant::now();
    let fused = engine.vector_fusion(&query, &sp).expect("fusion");
    println!("vector fusion:    {:>2}/10 correct in {:?}", overlap(&fused), t.elapsed());
}

//! Image search (paper §6.1): the Qichacha trademark / Beike Zhaofang floor
//! plan use case. Images are represented by deep-learning embeddings
//! (simulated here with clustered synthetic vectors standing in for
//! VGG/ResNet features); an HNSW index serves low-latency lookups; new
//! images stream in continuously and results stay fresh.
//!
//! Run with: `cargo run --release -p milvus-examples --bin image_search`

use milvus_core::{CollectionConfig, Milvus};
use milvus_datagen as datagen;
use milvus_index::traits::SearchParams;
use milvus_index::Metric;
use milvus_storage::{InsertBatch, Schema};

fn main() {
    let milvus = Milvus::new();
    // Cosine similarity is the usual choice for CNN embeddings.
    let schema = Schema::single("image_embedding", 96, Metric::Cosine);
    let config = CollectionConfig {
        auto_index_type: Some("HNSW".to_string()),
        index_threshold_bytes: 1, // index every segment in this demo
        ..Default::default()
    };
    let gallery = milvus
        .create_collection("trademark_gallery", schema, config)
        .expect("create collection");

    // Initial catalog: 20k trademark images (cluster id ≈ visual style).
    let n = 20_000;
    let images = datagen::deep_like(n, 2024);
    gallery
        .insert(InsertBatch::single((0..n as i64).collect(), images.clone()))
        .expect("insert catalog");
    gallery.flush().expect("flush");
    let stats = gallery.stats();
    println!(
        "catalog ready: {} images, {} segment(s), {} indexed",
        stats.live_rows, stats.segments, stats.indexed_segments
    );

    // A registration check: is this new logo too similar to an existing one?
    let candidate = datagen::queries_from(&images, 1, 0.02, 7);
    let hits = gallery
        .search("image_embedding", candidate.get(0), &SearchParams::top_k(5).with_ef(128))
        .expect("search");
    println!("\nsimilarity check for new trademark:");
    for h in &hits {
        println!("  image #{:<6} cosine similarity {:.4}", h.id, h.score);
    }
    let conflict = hits.first().filter(|h| h.score > 0.98);
    match conflict {
        Some(h) => println!("⚠ likely conflict with registered image #{}", h.id),
        None => println!("no conflict found"),
    }

    // New uploads arrive while queries keep running (dynamic data, §2.3).
    let fresh = datagen::deep_like(500, 9); // a new batch of registrations
    gallery
        .insert(InsertBatch::single((n as i64..n as i64 + 500).collect(), fresh))
        .expect("insert fresh batch");
    gallery.flush().expect("flush");
    println!("\ningested 500 new images; gallery now {}", gallery.num_entities());

    // Searches see the new snapshot immediately after the flush.
    let hits = gallery
        .search("image_embedding", candidate.get(0), &SearchParams::top_k(3).with_ef(128))
        .expect("search after ingest");
    println!("post-ingest top-3: {:?}", hits.iter().map(|h| h.id).collect::<Vec<_>>());
}

//! Quickstart: create a collection, insert entities, flush, and search —
//! the minimal end-to-end tour of the public API.
//!
//! Run with: `cargo run --release -p milvus-examples --bin quickstart`

use milvus_core::{CollectionConfig, Milvus};
use milvus_index::traits::SearchParams;
use milvus_index::{Metric, VectorSet};
use milvus_storage::{InsertBatch, Schema};

fn main() {
    // A Milvus instance over in-memory shared storage.
    let milvus = Milvus::new();

    // Entities: one 4-dimensional vector + a numeric "price" attribute.
    let schema = Schema::single("embedding", 4, Metric::L2).with_attribute("price");
    let collection = milvus
        .create_collection("products", schema, CollectionConfig::default())
        .expect("create collection");

    // Insert 1000 entities in one batch.
    let n = 1000;
    let mut vectors = VectorSet::new(4);
    let mut prices = Vec::new();
    for i in 0..n {
        let x = i as f32 / 100.0;
        vectors.push(&[x.sin(), x.cos(), (x * 0.5).sin(), (x * 0.5).cos()]);
        prices.push(10.0 + (i % 200) as f64);
    }
    collection
        .insert(InsertBatch {
            ids: (0..n as i64).collect(),
            vectors: vec![vectors],
            attributes: vec![prices],
        })
        .expect("insert");

    // Writes are asynchronous (§5.1): flush() makes them searchable.
    collection.flush().expect("flush");
    println!("inserted {} entities", collection.num_entities());

    // Vector query: top-5 most similar.
    let query = [0.8f32, 0.6, 0.4, 0.9];
    let hits = collection
        .search("embedding", &query, &SearchParams::top_k(5))
        .expect("search");
    println!("\ntop-5 nearest:");
    for h in &hits {
        println!("  id={:<4} L2²={:.4}", h.id, h.score);
    }

    // Attribute filtering: same query, but price must be in [10, 50].
    let hits = collection
        .filtered_search("embedding", &query, "price", 10.0, 50.0, &SearchParams::top_k(5))
        .expect("filtered search");
    println!("\ntop-5 nearest with price in [10, 50]:");
    for h in &hits {
        let entity = collection.get_entity(h.id).expect("entity exists");
        println!("  id={:<4} L2²={:.4} price={}", h.id, h.score, entity.attributes[0]);
    }

    // Dynamic data: delete the best match and search again.
    let best = hits[0].id;
    collection.delete(vec![best]).expect("delete");
    collection.flush().expect("flush");
    let hits = collection
        .filtered_search("embedding", &query, "price", 10.0, 50.0, &SearchParams::top_k(5))
        .expect("filtered search");
    assert!(hits.iter().all(|h| h.id != best));
    println!("\nafter deleting id={best}, it no longer appears ✓");
}

//! Offline CI smoke test for the observability HTTP surface: boots the REST
//! server, generates a little traffic (including one guaranteed-slow query),
//! then asserts that `GET /metrics` and `GET /debug/slow_queries` answer 200
//! with well-formed payloads. Exits non-zero on any failure so CI can gate
//! on it without external services.
//!
//! Run with: `cargo run --release -p milvus-examples --bin rest_smoke`

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::process::exit;
use std::sync::Arc;

use milvus_core::config::TraceConfig;
use milvus_core::rest::RestServer;
use milvus_core::Milvus;

/// Minimal HTTP/1.1 client: returns (status code, body).
fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: smoke\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut response = String::new();
    BufReader::new(stream).read_to_string(&mut response).expect("recv");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = response.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
    (status, body)
}

fn check(name: &str, ok: bool, detail: &str) {
    if ok {
        println!("  ok   {name}");
    } else {
        eprintln!("  FAIL {name}: {detail}");
        exit(1);
    }
}

fn expect_ok(name: &str, (status, body): (u16, String)) -> String {
    check(name, (200..300).contains(&status), &format!("status {status}, body: {body}"));
    body
}

fn parse(name: &str, body: &str) -> serde::Value {
    match serde::parse_value(body) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("  FAIL {name} is not valid JSON: {e} — body: {body}");
            exit(1);
        }
    }
}

fn main() {
    let milvus = Arc::new(Milvus::new());
    // Threshold 0 marks every sampled query as slow, so the ring buffer is
    // guaranteed to have an entry by the time we poll the debug endpoint.
    milvus.configure_tracing(TraceConfig {
        sample_rate: 1.0,
        slow_threshold_us: Some(0),
        ..Default::default()
    });

    let server = RestServer::serve(milvus, "127.0.0.1:0").expect("bind");
    let addr = server.addr();
    println!("smoke: REST server on http://{addr}");

    expect_ok(
        "POST /collections",
        request(addr, "POST", "/collections", r#"{"name":"smoke","dim":4,"metric":"L2"}"#),
    );
    expect_ok(
        "POST /collections/smoke/entities",
        request(
            addr,
            "POST",
            "/collections/smoke/entities",
            r#"{"ids":[1,2,3,4],
                "vectors":[[1.0,0.0,0.0,0.0],[0.0,1.0,0.0,0.0],
                           [0.0,0.0,1.0,0.0],[0.0,0.0,0.0,1.0]]}"#,
        ),
    );
    expect_ok(
        "POST /collections/smoke/flush",
        request(addr, "POST", "/collections/smoke/flush", ""),
    );
    expect_ok(
        "POST /collections/smoke/search",
        request(addr, "POST", "/collections/smoke/search", r#"{"vector":[0.9,0.1,0.0,0.0],"k":2}"#),
    );

    // --- POST /collections/smoke/search_batch: many vectors, one round
    // trip, one coalesced admission — results stay per-query.
    let body = expect_ok(
        "POST /collections/smoke/search_batch",
        request(
            addr,
            "POST",
            "/collections/smoke/search_batch",
            r#"{"vectors":[[0.9,0.1,0.0,0.0],[0.0,0.0,0.1,0.9]],"k":2}"#,
        ),
    );
    let json = parse("/collections/smoke/search_batch", &body);
    let results = json["results"].as_array();
    check(
        "search_batch returns one hit list per query vector",
        results.map(|r| r.len()) == Some(2),
        &body,
    );
    let (first, second) = (
        json["results"][0]["hits"][0]["id"].as_f64(),
        json["results"][1]["hits"][0]["id"].as_f64(),
    );
    check(
        "search_batch hit lists are per-query (1 then 4)",
        first == Some(1.0) && second == Some(4.0),
        &body,
    );
    let (status, body) =
        request(addr, "POST", "/collections/smoke/search_batch", r#"{"vectors":[[1.0]],"k":2}"#);
    check(
        "search_batch rejects mismatched dims with 400",
        status == 400 && body.contains("dim"),
        &format!("status {status}, body: {body}"),
    );

    // --- GET /metrics: must be 200 and carry the bufferpool + tracing +
    // executor + simulated-network families (declared at zero even before
    // any simulated traffic, so dashboards can pin them).
    let metrics = expect_ok("GET /metrics", request(addr, "GET", "/metrics", ""));
    for family in [
        "milvus_bufferpool_hits_total",
        "milvus_bufferpool_misses_total",
        "milvus_bufferpool_evictions_total",
        "milvus_bufferpool_resident_bytes",
        "milvus_slow_queries_total",
        "milvus_traces_sampled_total",
        "milvus_exec_queue_depth",
        "milvus_exec_steals_total",
        "milvus_exec_tasks_total",
        "milvus_exec_workers",
        "milvus_exec_workers_busy",
        "milvus_net_sent_total",
        "milvus_net_dropped_total",
        "milvus_net_delayed_total",
        "milvus_net_retries_total",
        "milvus_net_timeouts_total",
        "milvus_net_failovers_total",
        "milvus_search_degraded_total",
        "milvus_search_coverage_ratio",
        "milvus_sched_batch_size",
        "milvus_sched_coalesced_batches_total",
        "milvus_sched_coalesced_queries_total",
        "milvus_sched_inflight",
        "milvus_sched_passthrough_total",
        "milvus_sched_shed_total",
        "milvus_writer_up",
        "milvus_writer_failovers_total",
        "milvus_writer_replayed_records_total",
        "milvus_writer_deduped_ops_total",
        "milvus_writer_takeover_generation",
        "milvus_writer_takeover_replay_lsn",
    ] {
        check(
            &format!("/metrics declares {family}"),
            metrics.contains(&format!("# HELP {family}")),
            "HELP line missing",
        );
    }

    // --- GET /debug/slow_queries: must be 200 and valid JSON with our query.
    let body =
        expect_ok("GET /debug/slow_queries", request(addr, "GET", "/debug/slow_queries", ""));
    let json = match serde::parse_value(&body) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("  FAIL /debug/slow_queries is not valid JSON: {e} — body: {body}");
            exit(1);
        }
    };
    let count = json["count"].as_f64().unwrap_or(-1.0);
    check("/debug/slow_queries has count >= 1", count >= 1.0, &format!("count = {count}"));
    let entries = json["slow_queries"].as_array();
    let has_ours = entries
        .map(|arr| arr.iter().any(|t| t["collection"].as_str() == Some("smoke")))
        .unwrap_or(false);
    check("ring contains the smoke query", has_ours, &body);

    // --- Flight recorder: two explicit frames bracketing one search give
    // /debug/timeseries a closed window with a known counter delta.
    expect_ok(
        "POST /debug/timeseries/tick",
        request(addr, "POST", "/debug/timeseries/tick", ""),
    );
    expect_ok(
        "POST /collections/smoke/search (in window)",
        request(addr, "POST", "/collections/smoke/search", r#"{"vector":[0.1,0.9,0.0,0.0],"k":2}"#),
    );
    expect_ok(
        "POST /debug/timeseries/tick",
        request(addr, "POST", "/debug/timeseries/tick", ""),
    );
    let body = expect_ok("GET /debug/timeseries", request(addr, "GET", "/debug/timeseries", ""));
    let json = parse("/debug/timeseries", &body);
    check(
        "/debug/timeseries has >= 2 windows",
        json["windows"].as_f64().unwrap_or(0.0) >= 2.0,
        &body,
    );
    let delta = json["counters"]
        .as_array()
        .and_then(|arr| {
            arr.iter().find(|c| {
                c["name"].as_str() == Some("milvus_query_total")
                    && c["collection"].as_str() == Some("smoke")
            })
        })
        .and_then(|c| c["window_delta"].as_f64())
        .unwrap_or(-1.0);
    check("window delta counts the bracketed search", delta == 1.0, &format!("delta = {delta}"));

    // --- GET /debug/profile: the traced searches appear with stage rows.
    let body = expect_ok("GET /debug/profile", request(addr, "GET", "/debug/profile", ""));
    let json = parse("/debug/profile", &body);
    let has_op = json["ops"]
        .as_array()
        .map(|arr| {
            arr.iter().any(|o| {
                o["collection"].as_str() == Some("smoke")
                    && o["op"].as_str() == Some("search")
                    && o["stages"].as_array().is_some_and(|s| !s.is_empty())
            })
        })
        .unwrap_or(false);
    check("/debug/profile has a staged smoke/search entry", has_op, &body);

    // --- GET /health: a healthy single-node process answers ok with all
    // five components.
    let body = expect_ok("GET /health", request(addr, "GET", "/health", ""));
    let json = parse("/health", &body);
    check("/health is ok", json["status"].as_str() == Some("ok"), &body);
    check(
        "/health lists 5 components",
        json["components"].as_array().map(|c| c.len()) == Some(5),
        &body,
    );

    // --- POST /collections/smoke/explain: EXPLAIN ANALYZE round-trip.
    let body = expect_ok(
        "POST /collections/smoke/explain",
        request(addr, "POST", "/collections/smoke/explain", r#"{"vector":[0.9,0.1,0.0,0.0],"k":2}"#),
    );
    let json = parse("/collections/smoke/explain", &body);
    let report = json["report"].as_str().unwrap_or("");
    check(
        "explain report is well-formed",
        report.starts_with("EXPLAIN ANALYZE op=search") && report.contains("segment_scan"),
        report,
    );

    server.shutdown();
    println!("smoke: all checks passed ✓");
}

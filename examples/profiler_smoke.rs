//! Offline CI smoke test for the query profiler: runs a seeded workload
//! whose latency is dominated by an injected per-segment scan delay, then
//! asserts that the `/debug/profile` stage breakdown actually accounts for
//! the measured end-to-end latency — i.e. the profiler's attribution adds
//! up instead of losing time. Exits non-zero on any failure.
//!
//! Run with: `cargo run --release -p milvus-examples --bin profiler_smoke`

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::process::exit;
use std::sync::Arc;
use std::time::{Duration, Instant};

use milvus_core::config::TraceConfig;
use milvus_core::rest::RestServer;
use milvus_core::{CollectionConfig, Milvus};
use milvus_index::traits::SearchParams;
use milvus_index::{Metric, VectorSet};
use milvus_storage::{InsertBatch, Schema};

const DIM: usize = 8;
const QUERIES: u64 = 12;
const DELAY: Duration = Duration::from_millis(10);

fn check(name: &str, ok: bool, detail: &str) {
    if ok {
        println!("  ok   {name}");
    } else {
        eprintln!("  FAIL {name}: {detail}");
        exit(1);
    }
}

fn get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\n\r\n")
        .expect("send");
    let mut response = String::new();
    BufReader::new(stream).read_to_string(&mut response).expect("recv");
    check("GET response is 200", response.starts_with("HTTP/1.1 200"), &response);
    response.split("\r\n\r\n").nth(1).unwrap_or("").to_string()
}

fn main() {
    let milvus = Arc::new(Milvus::new());
    // Sample every query: the profiler aggregates all sampled traces.
    milvus.configure_tracing(TraceConfig { sample_rate: 1.0, ..Default::default() });

    let col = milvus
        .create_collection(
            "profiler_smoke",
            Schema::single("v", DIM, Metric::L2),
            CollectionConfig::for_tests(),
        )
        .expect("create collection");
    let ids: Vec<i64> = (0..500).collect();
    let mut vs = VectorSet::new(DIM);
    for &id in &ids {
        let mut v = [0.0f32; DIM];
        v[0] = id as f32;
        v[1] = (id % 13) as f32;
        vs.push(&v);
    }
    col.insert(InsertBatch::single(ids, vs)).expect("insert");
    col.flush().expect("flush");

    // Every segment scan sleeps DELAY first, so scan time dominates the
    // query and the expected floor of the profile is known exactly.
    let nsegs = col.snapshot().segments.len() as u64;
    check("workload produced segments", nsegs >= 1, "no segments after flush");
    for seg in &col.snapshot().segments {
        milvus_storage::inject_scan_delay(seg.id, DELAY);
    }

    let sp = SearchParams { k: 5, nprobe: 8, ..Default::default() };
    let wall = Instant::now();
    for q in 0..QUERIES {
        let mut probe = [0.0f32; DIM];
        probe[0] = (q * 37 % 500) as f32;
        col.search("v", &probe, &sp).expect("search");
    }
    let e2e_us = wall.elapsed().as_micros() as u64;
    milvus_storage::clear_scan_delays();

    let server = RestServer::serve(Arc::clone(&milvus), "127.0.0.1:0").expect("bind");
    let body = get(server.addr(), "/debug/profile");
    let json = match serde::parse_value(&body) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("  FAIL /debug/profile is not valid JSON: {e} — body: {body}");
            exit(1);
        }
    };

    let op = json["ops"]
        .as_array()
        .and_then(|arr| {
            arr.iter()
                .find(|o| {
                    o["collection"].as_str() == Some("profiler_smoke")
                        && o["op"].as_str() == Some("search")
                })
                .cloned()
        })
        .unwrap_or_else(|| {
            eprintln!("  FAIL profile entry missing — body: {body}");
            exit(1);
        });

    let queries = op["queries"].as_f64().unwrap_or(0.0) as u64;
    check("profiler saw every query", queries == QUERIES, &format!("queries = {queries}"));

    let total_us = op["total_latency_us"].as_f64().unwrap_or(0.0) as u64;
    let staged_us = op["stages_total_us"].as_f64().unwrap_or(0.0) as u64;
    let delay_floor_us = QUERIES * DELAY.as_micros() as u64;

    // The traced total must sit inside the wall-clock envelope: at least
    // the injected-delay floor, at most the measured end-to-end time (the
    // loop adds overhead *outside* the traces, never the reverse).
    check(
        "traced latency >= injected delay floor",
        total_us >= delay_floor_us,
        &format!("total {total_us}µs < floor {delay_floor_us}µs"),
    );
    check(
        "traced latency <= end-to-end wall time",
        total_us <= e2e_us,
        &format!("total {total_us}µs > e2e {e2e_us}µs"),
    );

    // Attribution adds up: the per-stage sums must cover the bulk of the
    // traced latency (scan dominates by construction), and — since stage
    // time is CPU-time-like — never exceed nsegs parallel scans per query.
    check(
        "stage breakdown covers >= 70% of traced latency",
        staged_us * 10 >= total_us * 7,
        &format!("stages {staged_us}µs vs total {total_us}µs"),
    );
    check(
        "stage breakdown is bounded by parallel scan budget",
        staged_us <= e2e_us * nsegs.max(1) + delay_floor_us,
        &format!("stages {staged_us}µs, e2e {e2e_us}µs, {nsegs} segments"),
    );

    let dominant = op["stages"]
        .as_array()
        .and_then(|s| s.first().cloned())
        .map(|s| s["stage"].as_str().unwrap_or("").to_string())
        .unwrap_or_default();
    check(
        "segment_scan is the dominant stage",
        dominant == "segment_scan",
        &format!("dominant stage = {dominant:?} — body: {body}"),
    );

    server.shutdown();
    println!("profiler smoke: all checks passed ✓ ({QUERIES} queries, {nsegs} segments, e2e {e2e_us}µs, staged {staged_us}µs)");
}

//! Example-application crate; the binaries in this directory are the runnable examples.

//! RESTful API demo (paper §2.1: "Milvus also supports RESTful APIs for web
//! applications"): starts the HTTP server on an ephemeral port, then drives
//! it with raw HTTP requests like a web client would.
//!
//! Run with: `cargo run --release -p milvus-examples --bin rest_api`

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use milvus_core::rest::RestServer;
use milvus_core::Milvus;

fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: demo\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut response = String::new();
    BufReader::new(stream).read_to_string(&mut response).expect("recv");
    response.split("\r\n\r\n").nth(1).unwrap_or("").to_string()
}

fn main() {
    let server = RestServer::serve(Arc::new(Milvus::new()), "127.0.0.1:0").expect("bind");
    let addr = server.addr();
    println!("Milvus REST API listening on http://{addr}");

    println!("\nPOST /collections");
    let r = request(
        addr,
        "POST",
        "/collections",
        r#"{"name":"docs","dim":4,"metric":"COSINE","attributes":["year"]}"#,
    );
    println!("  → {r}");

    println!("POST /collections/docs/entities");
    let r = request(
        addr,
        "POST",
        "/collections/docs/entities",
        r#"{"ids":[1,2,3],
            "vectors":[[1.0,0.0,0.0,0.0],[0.7,0.7,0.0,0.0],[0.0,0.0,1.0,0.0]],
            "attributes":[[1999.0,2015.0,2023.0]]}"#,
    );
    println!("  → {r}");

    println!("POST /collections/docs/flush");
    println!("  → {}", request(addr, "POST", "/collections/docs/flush", ""));

    println!("POST /collections/docs/search  (plain vector query)");
    let r = request(
        addr,
        "POST",
        "/collections/docs/search",
        r#"{"vector":[0.9,0.1,0.0,0.0],"k":2}"#,
    );
    println!("  → {r}");

    println!("POST /collections/docs/search  (filtered: year >= 2010)");
    let r = request(
        addr,
        "POST",
        "/collections/docs/search",
        r#"{"vector":[0.9,0.1,0.0,0.0],"k":2,
            "filter":{"attribute":"year","min":2010.0,"max":2100.0}}"#,
    );
    println!("  → {r}");

    println!("GET /collections/docs/stats");
    println!("  → {}", request(addr, "GET", "/collections/docs/stats", ""));

    server.shutdown();
    println!("\nserver shut down cleanly ✓");
}

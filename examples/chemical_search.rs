//! Chemical structure analysis (paper §6.2): the Apptech drug-discovery use
//! case. Molecules are encoded as binary fingerprints (bit = substructure
//! present) and similar compounds are retrieved with the **Tanimoto**
//! distance — the standard choice for fingerprint similarity. The paper
//! reports Milvus cutting analysis time "from hours to less than a minute".
//!
//! Run with: `cargo run --release -p milvus-examples --bin chemical_search`

use milvus_index::binary::{pack_bits, BinaryVectorSet};
use milvus_index::Metric;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const FINGERPRINT_BITS: usize = 256;

/// Generate a synthetic fingerprint library: `families` scaffold patterns,
/// each with derivative compounds that share most substructure bits.
fn fingerprint_library(n: usize, families: usize, seed: u64) -> (BinaryVectorSet, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let scaffolds: Vec<Vec<bool>> = (0..families)
        .map(|_| (0..FINGERPRINT_BITS).map(|_| rng.gen_bool(0.25)).collect())
        .collect();
    let mut set = BinaryVectorSet::new(FINGERPRINT_BITS);
    let mut family_of = Vec::with_capacity(n);
    for i in 0..n {
        let f = i % families;
        // Derivatives: flip ~4% of the scaffold's bits.
        let bits: Vec<bool> =
            scaffolds[f].iter().map(|&b| if rng.gen_bool(0.04) { !b } else { b }).collect();
        set.push(&pack_bits(&bits));
        family_of.push(f);
    }
    (set, family_of)
}

fn main() {
    let n = 50_000;
    let families = 200;
    let (library, family_of) = fingerprint_library(n, families, 77);
    println!("compound library: {} fingerprints of {FINGERPRINT_BITS} bits", library.len());

    // A chemist probes with a derivative of family 42's scaffold.
    let probe_row = family_of.iter().position(|&f| f == 42).expect("family exists");
    let probe = library.get(probe_row).to_vec();

    for metric in [Metric::Tanimoto, Metric::Jaccard, Metric::Hamming] {
        let t = std::time::Instant::now();
        let hits = library.search(metric, &probe, 10);
        let elapsed = t.elapsed();
        let same_family = hits.iter().filter(|(row, _)| family_of[*row] == 42).count();
        println!(
            "\n{metric}: top-10 in {elapsed:?} — {same_family}/10 from the probe's scaffold family"
        );
        for (row, dist) in hits.iter().take(3) {
            println!("  compound #{row:<6} family {:<4} distance {dist:.4}", family_of[*row]);
        }
        assert!(same_family >= 9, "{metric} failed to group the scaffold family");
    }

    // Novelty screening: a random (unrelated) fingerprint should be distant
    // from everything.
    let mut rng = StdRng::seed_from_u64(99);
    let random_bits: Vec<bool> = (0..FINGERPRINT_BITS).map(|_| rng.gen_bool(0.5)).collect();
    let novel = pack_bits(&random_bits);
    let nearest = library.search(Metric::Tanimoto, &novel, 1);
    println!(
        "\nnovelty screen: nearest library compound at Tanimoto distance {:.3} (novel ✓)",
        nearest[0].1
    );
}

//! Distributed deployment (paper §5.3, Figure 5): one writer, several
//! stateless readers over shared storage, consistent-hash sharding,
//! and K8s-style elasticity — a reader crash loses nothing.
//!
//! Run with: `cargo run --release -p milvus-examples --bin distributed_cluster`

use std::sync::Arc;

use milvus_datagen as datagen;
use milvus_distributed::{Cluster, NodeId, SimNet};
use milvus_index::traits::SearchParams;
use milvus_index::Metric;
use milvus_storage::object_store::MemoryStore;
use milvus_storage::{InsertBatch, LsmConfig, Schema};

fn main() {
    // A cluster: 16 shards over shared storage, 3 reader nodes.
    let schema = Schema::single("v", 96, Metric::L2);
    let cluster = Cluster::new(
        schema,
        16,
        3,
        Arc::new(MemoryStore::new()),
        LsmConfig::default(),
    )
    .expect("cluster");

    // The writer ingests; segments land in shared storage per shard.
    let n = 30_000;
    let data = datagen::deep_like(n, 555);
    cluster
        .insert(InsertBatch::single((0..n as i64).collect(), data.clone()))
        .expect("insert");
    cluster.flush().expect("flush");
    println!("cluster holds {} entities across {} shards", cluster.live_rows(), 16);
    for r in cluster.readers() {
        println!(
            "  reader {} serves shards {:?} ({} segments cached)",
            r.id,
            r.assigned_shards(),
            r.loaded_segments()
        );
    }

    // A distributed query fans out to every reader and merges.
    let queries = datagen::queries_from(&data, 1, 0.05, 556);
    let sp = SearchParams::top_k(5);
    let before = cluster.search("v", queries.get(0), &sp).expect("search");
    println!("\ntop-5: {:?}", before.iter().map(|x| x.id).collect::<Vec<_>>());

    // Crash a reader. Readers are stateless: the survivors take over its
    // shards from shared storage; results are identical.
    let victim = cluster.readers()[0].id;
    cluster.crash_reader(victim);
    println!("\ncrashed reader {victim}; {} readers remain", cluster.reader_count());
    let during = cluster.search("v", queries.get(0), &sp).expect("search");
    assert_eq!(before, during);
    println!("results identical after crash ✓");

    // "K8s restarts a new instance": elastic scale-up restores capacity.
    let replacement = cluster.add_reader().expect("add reader");
    println!(
        "replacement reader {} registered, serving shards {:?}",
        replacement.id,
        replacement.assigned_shards()
    );
    let after = cluster.search("v", queries.get(0), &sp).expect("search");
    assert_eq!(before, after);
    println!("results identical after replacement ✓");

    // Deletes propagate cluster-wide through the writer.
    cluster.delete(&[before[0].id]).expect("delete");
    cluster.flush().expect("flush");
    let post_delete = cluster.search("v", queries.get(0), &sp).expect("search");
    assert!(post_delete.iter().all(|x| x.id != before[0].id));
    println!("\ndeleted top hit {}; no longer returned ✓", before[0].id);

    // ---- Simulated lossy network (DESIGN.md §9) -------------------------
    // The same cluster shape over a seeded SimNet: partition one reader's
    // query link and watch the fan-out retry, time out (virtual time only)
    // and fail its shards over to the survivors — results stay exact.
    let net = SimNet::new(42);
    let sim = Cluster::with_transport(
        Schema::single("v", 96, Metric::L2),
        16,
        3,
        Arc::new(MemoryStore::new()),
        LsmConfig::default(),
        net.clone(),
    )
    .expect("sim cluster");
    let n = 5_000;
    let data = datagen::deep_like(n, 557);
    sim.insert(InsertBatch::single((0..n as i64).collect(), data.clone())).expect("insert");
    sim.flush().expect("flush");
    let q = datagen::queries_from(&data, 1, 0.05, 558);
    let clean = sim.search("v", q.get(0), &sp).expect("search");

    let victim = sim.readers()[0].id;
    net.partition(NodeId::Client, NodeId::Reader(victim));
    let report = sim.search_detailed("v", q.get(0), &sp).expect("search under partition");
    assert_eq!(report.neighbors, clean);
    println!(
        "\npartitioned reader {victim}: failed={:?} failover shards={:?} — results exact ✓",
        report.failed_readers, report.failover_shards
    );
    net.heal();
    let healed = sim.search_detailed("v", q.get(0), &sp).expect("search after heal");
    assert!(healed.failed_readers.is_empty());
    let s = net.stats();
    println!(
        "healed; network saw sent={} dropped={} retries={} timeouts={} (virtual {}ms)",
        s.sent,
        s.dropped,
        s.retries,
        s.timeouts,
        net.virtual_time().as_millis()
    );
}

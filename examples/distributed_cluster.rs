//! Distributed deployment (paper §5.3, Figure 5): one writer, several
//! stateless readers over shared storage, consistent-hash sharding,
//! and K8s-style elasticity — a reader crash loses nothing.
//!
//! Run with: `cargo run --release -p milvus-examples --bin distributed_cluster`

use std::sync::Arc;

use milvus_datagen as datagen;
use milvus_distributed::Cluster;
use milvus_index::traits::SearchParams;
use milvus_index::Metric;
use milvus_storage::object_store::MemoryStore;
use milvus_storage::{InsertBatch, LsmConfig, Schema};

fn main() {
    // A cluster: 16 shards over shared storage, 3 reader nodes.
    let schema = Schema::single("v", 96, Metric::L2);
    let cluster = Cluster::new(
        schema,
        16,
        3,
        Arc::new(MemoryStore::new()),
        LsmConfig::default(),
    )
    .expect("cluster");

    // The writer ingests; segments land in shared storage per shard.
    let n = 30_000;
    let data = datagen::deep_like(n, 555);
    cluster
        .insert(InsertBatch::single((0..n as i64).collect(), data.clone()))
        .expect("insert");
    cluster.flush().expect("flush");
    println!("cluster holds {} entities across {} shards", cluster.live_rows(), 16);
    for r in cluster.readers() {
        println!(
            "  reader {} serves shards {:?} ({} segments cached)",
            r.id,
            r.assigned_shards(),
            r.loaded_segments()
        );
    }

    // A distributed query fans out to every reader and merges.
    let queries = datagen::queries_from(&data, 1, 0.05, 556);
    let sp = SearchParams::top_k(5);
    let before = cluster.search("v", queries.get(0), &sp).expect("search");
    println!("\ntop-5: {:?}", before.iter().map(|x| x.id).collect::<Vec<_>>());

    // Crash a reader. Readers are stateless: the survivors take over its
    // shards from shared storage; results are identical.
    let victim = cluster.readers()[0].id;
    cluster.crash_reader(victim);
    println!("\ncrashed reader {victim}; {} readers remain", cluster.reader_count());
    let during = cluster.search("v", queries.get(0), &sp).expect("search");
    assert_eq!(before, during);
    println!("results identical after crash ✓");

    // "K8s restarts a new instance": elastic scale-up restores capacity.
    let replacement = cluster.add_reader().expect("add reader");
    println!(
        "replacement reader {} registered, serving shards {:?}",
        replacement.id,
        replacement.assigned_shards()
    );
    let after = cluster.search("v", queries.get(0), &sp).expect("search");
    assert_eq!(before, after);
    println!("results identical after replacement ✓");

    // Deletes propagate cluster-wide through the writer.
    cluster.delete(&[before[0].id]).expect("delete");
    cluster.flush().expect("flush");
    let post_delete = cluster.search("v", queries.get(0), &sp).expect("search");
    assert!(post_delete.iter().all(|x| x.id != before[0].id));
    println!("\ndeleted top hit {}; no longer returned ✓", before[0].id);
}

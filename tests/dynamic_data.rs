//! Dynamic-data integration: the LSM behaviors of §2.3 and the snapshot
//! isolation of §5.2, exercised through the full stack.

use std::sync::Arc;

use milvus_core::{CollectionConfig, Milvus};
use milvus_index::traits::SearchParams;
use milvus_index::{Metric, VectorSet};
use milvus_storage::merge::MergePolicy;
use milvus_storage::{InsertBatch, LsmConfig, Schema};

fn collection_with_merge() -> Arc<milvus_core::Collection> {
    let milvus = Milvus::new();
    let mut config = CollectionConfig::for_tests();
    config.lsm = LsmConfig {
        flush_threshold_bytes: 1 << 20,
        auto_merge: false,
        merge_policy: MergePolicy { min_segments_per_merge: 2, ..Default::default() },
        ..Default::default()
    };
    milvus
        .create_collection("dyn", Schema::single("v", 2, Metric::L2), config)
        .unwrap()
}

fn batch(range: std::ops::Range<i64>) -> InsertBatch {
    let ids: Vec<i64> = range.collect();
    let mut vs = VectorSet::new(2);
    for &id in &ids {
        vs.push(&[id as f32, 0.0]);
    }
    InsertBatch::single(ids, vs)
}

#[test]
fn interleaved_inserts_deletes_updates() {
    let col = collection_with_merge();
    col.insert(batch(0..100)).unwrap();
    col.flush().unwrap();

    // Delete a range, update (delete+insert) a few ids with shifted vectors.
    col.delete((10..20).collect()).unwrap();
    col.delete(vec![50]).unwrap();
    let mut vs = VectorSet::new(2);
    vs.push(&[500.0, 0.0]);
    col.insert(InsertBatch::single(vec![50], vs)).unwrap();
    col.flush().unwrap();

    assert_eq!(col.num_entities(), 90);
    // Deleted rows never surface.
    for probe in 10..20 {
        let hits = col.search("v", &[probe as f32, 0.0], &SearchParams::top_k(1)).unwrap();
        assert_ne!(hits[0].id, probe);
    }
    // The updated row has its new vector.
    let e = col.get_entity(50).unwrap();
    assert_eq!(e.vectors[0], vec![500.0, 0.0]);
    let hits = col.search("v", &[499.0, 0.0], &SearchParams::top_k(1)).unwrap();
    assert_eq!(hits[0].id, 50);
}

#[test]
fn merge_preserves_query_results() {
    let col = collection_with_merge();
    for i in 0..6 {
        col.insert(batch(i * 50..(i + 1) * 50)).unwrap();
        col.flush().unwrap();
    }
    col.delete(vec![7, 77, 177]).unwrap();
    col.flush().unwrap();
    let before: Vec<i64> = col
        .search("v", &[123.2, 0.0], &SearchParams::top_k(10))
        .unwrap()
        .iter()
        .map(|h| h.id)
        .collect();
    let segs_before = col.stats().segments;

    let merges = col.engine().maybe_merge().unwrap();
    assert!(merges >= 1, "expected at least one merge");
    assert!(col.stats().segments < segs_before);

    let after: Vec<i64> = col
        .search("v", &[123.2, 0.0], &SearchParams::top_k(10))
        .unwrap()
        .iter()
        .map(|h| h.id)
        .collect();
    assert_eq!(before, after, "merge changed results");
    assert_eq!(col.num_entities(), 297);
}

#[test]
fn pinned_snapshot_survives_concurrent_mutation() {
    let col = collection_with_merge();
    col.insert(batch(0..50)).unwrap();
    col.flush().unwrap();

    let pinned = col.snapshot();
    assert_eq!(pinned.live_rows(), 50);

    // Mutate heavily after pinning.
    col.delete((0..25).collect()).unwrap();
    col.insert(batch(100..150)).unwrap();
    col.flush().unwrap();
    col.engine().maybe_merge().unwrap();

    // The pinned view is unchanged; the live view moved on.
    assert_eq!(pinned.live_rows(), 50);
    assert!(pinned.locate(3).is_some());
    assert_eq!(col.num_entities(), 75);
    assert!(col.snapshot().locate(3).is_none());

    // GC: dropping the pin lets the manager collect it.
    drop(pinned);
    let (_, still_pinned) = col.engine().collect_garbage();
    assert!(still_pinned <= 1, "only the current snapshot should remain pinned");
}

#[test]
fn concurrent_readers_and_writer() {
    let col = collection_with_merge();
    col.insert(batch(0..200)).unwrap();
    col.flush().unwrap();

    let col2 = Arc::clone(&col);
    let reader = std::thread::spawn(move || {
        // Readers hammer searches while the writer mutates.
        for i in 0..200 {
            let hits = col2
                .search("v", &[(i % 200) as f32, 0.0], &SearchParams::top_k(3))
                .expect("search during writes");
            assert!(!hits.is_empty());
        }
    });
    for i in 0..10 {
        col.delete(vec![i * 13]).unwrap();
        col.insert(batch(1000 + i * 10..1000 + (i + 1) * 10)).unwrap();
        col.flush().unwrap();
    }
    reader.join().unwrap();
    assert_eq!(col.num_entities(), 200 - 10 + 100);
}

#[test]
fn flush_threshold_creates_segments_automatically() {
    let milvus = Milvus::new();
    let mut config = CollectionConfig::for_tests();
    config.lsm.flush_threshold_bytes = 256; // tiny: every batch flushes
    let col = milvus
        .create_collection("auto", Schema::single("v", 2, Metric::L2), config)
        .unwrap();
    for i in 0..4 {
        col.insert(batch(i * 20..(i + 1) * 20)).unwrap();
    }
    col.flush().unwrap();
    assert_eq!(col.num_entities(), 80);
    assert!(col.stats().segments >= 4, "threshold flushes should fragment");
}

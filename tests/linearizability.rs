//! ISSUE 10 acceptance: automated writer failover survives seeded chaos
//! with zero linearizability violations.
//!
//! A [`Cluster::with_failover`] routes every ingest RPC over a seeded
//! [`SimNet`]; the chaos schedule kills the current writer at seeded crash
//! points (mid-insert, mid-ship, mid-checkpoint — the writer's ingest and
//! storage links are partitioned between or inside operations), the
//! cluster promotes standbys transparently, and the client records every
//! invocation and observed outcome into a [`History`]. After convergence
//! the [`milvus_distributed::linearize::check`] verdict must be empty: no
//! acked write lost, no unacked write resurrected without a durable log
//! record, no deleted id reappearing, checkpoint cuts monotone. The whole
//! transcript is bit-identical across two runs with the same seed.

use std::collections::BTreeSet;
use std::sync::Arc;

use milvus_datagen as datagen;
use milvus_distributed::coordinator::Coordinator;
use milvus_distributed::linearize;
use milvus_distributed::log_ship::SharedLog;
use milvus_distributed::writer::WriterNode;
use milvus_distributed::{Cluster, History, NodeId, RetryPolicy, SimNet};
use milvus_index::traits::SearchParams;
use milvus_index::{Metric, VectorSet};
use milvus_storage::object_store::{MemoryStore, ObjectStore};
use milvus_storage::{InsertBatch, LsmConfig, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIM: usize = 8;

fn schema() -> Schema {
    Schema::single("v", DIM, Metric::L2)
}

fn config() -> LsmConfig {
    LsmConfig { auto_merge: false, ..Default::default() }
}

fn failover_cluster(
    shards: usize,
    readers: usize,
    seed: u64,
) -> (Cluster, Arc<SimNet>, Arc<dyn ObjectStore>) {
    let net = SimNet::new(seed);
    let shared: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
    let c = Cluster::with_failover(
        schema(),
        shards,
        readers,
        Arc::clone(&shared),
        config(),
        net.clone(),
    )
    .unwrap();
    (c, net, shared)
}

fn batch(ids: Vec<i64>, data: &VectorSet, rows: &[usize]) -> InsertBatch {
    InsertBatch::single(ids, data.gather(rows))
}

/// Partition the *current* writer away from both its clients and the
/// shared store — the simulated crash. (A promoted standby has its own
/// endpoint, so this never touches the replacement's links.)
fn crash_writer(c: &Cluster, net: &SimNet) {
    let ep = c.writer_endpoint();
    net.partition(NodeId::Client, ep);
    net.partition(ep, NodeId::Storage);
}

/// The chosen insert semantics, pinned: exactly-once. An insert whose
/// first attempt executes on the writer but loses every acknowledgment
/// triggers a takeover; the promoted standby replays the shipped record,
/// recognizes the client's retried operation id, and acks without applying
/// twice.
#[test]
fn insert_with_lost_acks_is_exactly_once_across_failover() {
    let (c, net, shared) = failover_cluster(4, 2, 51);
    let data = datagen::clustered(120, DIM, 4, -1.0, 1.0, 0.2, 910);

    let rows: Vec<usize> = (0..100).collect();
    c.insert(batch((0..100).collect(), &data, &rows)).unwrap();
    c.flush().unwrap();
    assert_eq!(c.live_rows(), 100);

    // Requests reach the writer; every acknowledgment is lost. Each retry
    // re-executes on the (deduping) writer, the exhausted link reads as a
    // crash, and the standby finishes the operation exactly once.
    net.partition_oneway(NodeId::Writer, NodeId::Client);
    let before = milvus_obs::registry().snapshot();
    c.insert(batch(vec![100], &data, &[100])).unwrap();
    assert_eq!(c.takeover_generation(), 1, "lost acks must have promoted a standby");
    assert_eq!(c.writer_endpoint(), NodeId::Standby(1));

    net.heal();
    c.flush().unwrap();
    assert_eq!(c.live_rows(), 101, "retries must not duplicate the batch");
    let after = milvus_obs::registry().snapshot();
    assert!(
        after.counter_total(milvus_obs::WRITER_DEDUPED_OPS)
            > before.counter_total(milvus_obs::WRITER_DEDUPED_OPS),
        "the standby must have recognized the retried op id"
    );
    assert!(
        after.counter_total(milvus_obs::WRITER_FAILOVERS)
            > before.counter_total(milvus_obs::WRITER_FAILOVERS)
    );

    // The shipped log holds exactly one durable record for the op despite
    // the re-executions (same key, same bytes).
    let inserts_of_100 = SharedLog::entries(&shared)
        .unwrap()
        .into_iter()
        .filter(|e| match &e.record {
            milvus_storage::wal::LogRecord::Insert { batch, .. } => batch.ids.contains(&100),
            _ => false,
        })
        .count();
    assert_eq!(inserts_of_100, 1, "dedupe must also keep the log free of retry copies");
}

/// Build one crashed-writer store: a shipped prefix, a flush, then a crash
/// at `crash_point`. Deterministic — two invocations produce bit-identical
/// store contents.
fn crashed_store(crash_point: &str) -> Arc<dyn ObjectStore> {
    let shared: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
    let coordinator = Coordinator::new(4);
    let net = SimNet::new(52);
    let data = datagen::clustered(200, DIM, 4, -1.0, 1.0, 0.2, 911);
    let writer = WriterNode::with_log_shipping_transport(
        schema(),
        config(),
        Arc::clone(&shared),
        Arc::clone(&coordinator),
        net.clone(),
    )
    .unwrap();
    let head: Vec<usize> = (0..120).collect();
    writer.insert(batch((0..120).collect(), &data, &head)).unwrap();
    writer.flush().unwrap();
    let tail: Vec<usize> = (120..200).collect();
    writer.insert(batch((120..200).collect(), &data, &tail)).unwrap();
    writer.delete(&[5, 55]).unwrap();
    match crash_point {
        // Crash with the tail live only in the shipped log.
        "mid-insert" => {}
        // The storage link dies, then an insert fails unacked (nothing
        // durable), then the crash: recovery sees only the prefix.
        "mid-ship" => {
            net.partition(NodeId::Writer, NodeId::Storage);
            let more: Vec<usize> = (0..10).collect();
            writer.insert(batch((200..210).collect(), &data, &more)).unwrap_err();
        }
        // The link dies inside flush: segments land (engines write the
        // store directly) but the covering checkpoint is never shipped, so
        // recovery must tolerate replaying already-flushed records.
        "mid-checkpoint" => {
            net.partition(NodeId::Writer, NodeId::Storage);
            writer.flush().unwrap_err();
        }
        other => panic!("unknown crash point {other}"),
    }
    shared
}

/// Satellite: takeover equivalence. For every seeded crash point, a
/// standby recovering over a faulty link (duplicates + reorders on its own
/// `Standby(1) → Storage` recovery reads) converges to the *same* state as
/// a fault-free twin: same searchable ids, same flushed segment versions,
/// same term.
#[test]
fn takeover_equivalent_to_fault_free_twin_at_every_crash_point() {
    for crash_point in ["mid-insert", "mid-ship", "mid-checkpoint"] {
        let twin_store = crashed_store(crash_point);
        let twin = WriterNode::standby_takeover(
            schema(),
            config(),
            Arc::clone(&twin_store),
            Coordinator::new(4),
        )
        .unwrap();

        let faulty_store = crashed_store(crash_point);
        let net = SimNet::new(53);
        net.set_duplicate(NodeId::Standby(1), NodeId::Storage, 1.0);
        net.set_reorder(NodeId::Standby(1), NodeId::Storage, 0.5);
        let standby = WriterNode::standby_takeover_with_transport(
            schema(),
            config(),
            Arc::clone(&faulty_store),
            Coordinator::new(4),
            net.clone(),
            NodeId::Standby(1),
            RetryPolicy::default(),
        )
        .unwrap();

        assert_eq!(standby.term(), twin.term(), "{crash_point}: takeover terms diverged");
        assert_eq!(
            standby.live_ids(),
            twin.live_ids(),
            "{crash_point}: searchable ids diverged from the fault-free twin"
        );
        assert_eq!(
            standby.segment_versions(),
            twin.segment_versions(),
            "{crash_point}: flushed segment versions diverged"
        );
    }
}

/// Satellite regression: replay and truncation share one cut rule. A
/// duplicated + reordered checkpoint schedule (checkpoints shipped through
/// a faulty link, in several takeover terms) must leave `replay_tail` and
/// `truncate` in exact agreement: truncation never deletes a record replay
/// still wants, and never keeps covered ones alive to be replayed later.
#[test]
fn replay_and_truncate_agree_under_duplicated_reordered_checkpoints() {
    let shared: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
    let coordinator = Coordinator::new(2);
    let data = datagen::clustered(150, DIM, 3, -1.0, 1.0, 0.2, 912);
    let net = SimNet::new(54);
    net.set_duplicate(NodeId::Writer, NodeId::Storage, 1.0);
    net.set_reorder(NodeId::Writer, NodeId::Storage, 0.7);

    // Term 0 ships data and several checkpoints through the faulty link.
    {
        let writer = WriterNode::with_log_shipping_transport(
            schema(),
            config(),
            Arc::clone(&shared),
            Arc::clone(&coordinator),
            net.clone(),
        )
        .unwrap();
        for chunk in 0..3 {
            let rows: Vec<usize> = (chunk * 40..(chunk + 1) * 40).collect();
            let ids: Vec<i64> = rows.iter().map(|&r| r as i64).collect();
            writer.insert(batch(ids, &data, &rows)).unwrap();
            writer.flush().unwrap();
        }
        writer.insert(batch(vec![500], &data, &[145])).unwrap();
        // Crash with one record past the newest checkpoint.
    }

    // Term 1 takes over (replays id 500, flushes, ships its own
    // checkpoint), then keeps writing.
    let standby = WriterNode::standby_takeover(
        schema(),
        config(),
        Arc::clone(&shared),
        Arc::clone(&coordinator),
    )
    .unwrap();
    standby.insert(batch(vec![501], &data, &[146])).unwrap();

    // The store now holds checkpoints of two terms in overlapping key
    // ranges, some duplicated. The cut rule must make replay and
    // truncation agree exactly.
    let replay_before: Vec<String> =
        SharedLog::replay_tail(&shared).unwrap().iter().map(|r| format!("{r:?}")).collect();
    assert!(!replay_before.is_empty(), "id 501 is past the term-1 checkpoint");
    let removed = standby.truncate_shared_log().unwrap();
    assert!(removed > 0, "covered records must be truncated");
    let replay_after: Vec<String> =
        SharedLog::replay_tail(&shared).unwrap().iter().map(|r| format!("{r:?}")).collect();
    assert_eq!(replay_before, replay_after, "truncation changed the replay tail");

    // And a third writer recovering from the truncated log converges.
    let third =
        WriterNode::standby_takeover(schema(), config(), Arc::clone(&shared), coordinator)
            .unwrap();
    assert_eq!(third.live_rows(), 122); // 3 chunks of 40, plus ids 500 and 501
}

/// One seeded writer-crash chaos run. Returns the transcript plus the
/// checker verdict; the caller asserts both.
fn chaos_run(seed: u64) -> (Vec<String>, Vec<linearize::Violation>) {
    let data = datagen::clustered(400, DIM, 8, -1.0, 1.0, 0.2, 913);
    let (c, net, shared) = failover_cluster(4, 2, seed);
    c.set_retry_policy(RetryPolicy { attempts: 3, ..Default::default() });

    let mut rng = StdRng::seed_from_u64(seed ^ 0xFEED);
    let mut history = History::new();
    let mut transcript = Vec::new();
    let mut next_id: i64 = 0;
    let mut acked_ids: Vec<i64> = Vec::new();
    let sp = SearchParams::top_k(5);

    for step in 0..120 {
        match rng.gen_range(0..10) {
            0..=3 => {
                let n = rng.gen_range(3..8);
                let rows: Vec<usize> = (0..n).map(|_| rng.gen_range(0..data.len())).collect();
                let ids: Vec<i64> = (0..n as i64).map(|i| next_id + i).collect();
                next_id += n as i64;
                let (op_id, res) = c.insert_tracked(batch(ids.clone(), &data, &rows));
                transcript.push(format!(
                    "step {step}: insert op={op_id} ids={ids:?} -> {}",
                    res.as_ref().map(|_| "ack").unwrap_or("err")
                ));
                if res.is_ok() {
                    acked_ids.extend(&ids);
                }
                history.record_insert(op_id, ids, &res);
            }
            4 => {
                if acked_ids.is_empty() {
                    continue;
                }
                let id = acked_ids.remove(rng.gen_range(0..acked_ids.len()));
                let res = c.delete(&[id]);
                transcript.push(format!(
                    "step {step}: delete id={id} -> {}",
                    res.as_ref().map(|_| "ack").unwrap_or("err")
                ));
                history.record_delete(vec![id], &res);
            }
            5 => {
                let res = c.flush();
                transcript.push(format!(
                    "step {step}: flush -> {} gen={}",
                    res.as_ref().map(|_| "ack").unwrap_or("err"),
                    c.takeover_generation(),
                ));
            }
            6 | 7 => {
                crash_writer(&c, &net);
                let deep = rng.gen_bool(0.3);
                if deep {
                    // Also take down the next standby's links: promotion
                    // fails, operations surface Unavailable (indeterminate)
                    // until a heal lets a later takeover succeed.
                    let next = NodeId::Standby(c.takeover_generation() + 1);
                    net.partition(NodeId::Client, next);
                    net.partition(next, NodeId::Storage);
                }
                transcript.push(format!(
                    "step {step}: crash writer={} deep={deep}",
                    c.writer_endpoint()
                ));
            }
            8 => {
                net.heal();
                let _ = c.resync();
                transcript.push(format!("step {step}: heal"));
            }
            _ => {
                if acked_ids.is_empty() {
                    continue;
                }
                let probe = acked_ids[rng.gen_range(0..acked_ids.len())];
                let report = c.search_detailed("v", &[probe as f32 % 2.0; DIM], &sp).unwrap();
                transcript.push(format!(
                    "step {step}: search ids={:?} uncovered={:?}",
                    report.neighbors.iter().map(|n| (n.id, n.dist.to_bits())).collect::<Vec<_>>(),
                    report.uncovered_shards,
                ));
            }
        }
    }

    // Converge: heal everything, flush through whatever writer is current
    // (promoting once more if the last crash is still outstanding).
    net.heal();
    c.flush().unwrap();
    transcript.push(format!(
        "final: gen={} live={} virtual={}us",
        c.takeover_generation(),
        c.live_rows(),
        net.virtual_time().as_micros(),
    ));

    let final_live: BTreeSet<i64> = c.writer().live_ids().into_iter().collect();
    let entries = SharedLog::entries(&shared).unwrap();
    let violations = linearize::check(&history, &final_live, &entries);
    (transcript, violations)
}

/// The tentpole acceptance: seeded chaos that kills the writer mid-ingest
/// converges after automated takeovers with **zero** checker violations,
/// and the transcript is bit-identical for the same seed.
#[test]
fn writer_crash_chaos_linearizes_and_is_deterministic() {
    let (a, violations) = chaos_run(7001);
    assert!(
        violations.is_empty(),
        "linearizability violations:\n{}",
        violations.iter().map(|v| format!("  {v}")).collect::<Vec<_>>().join("\n")
    );
    assert!(
        a.iter().any(|l| l.contains("crash writer")),
        "chaos schedule never killed the writer"
    );
    assert!(
        a.last().unwrap().contains("gen=") && !a.last().unwrap().contains("gen=0"),
        "no takeover happened: {:?}",
        a.last()
    );

    let (b, violations_b) = chaos_run(7001);
    assert!(violations_b.is_empty());
    assert_eq!(a, b, "same seed must give a bit-identical transcript");

    let (c, violations_c) = chaos_run(7002);
    assert!(violations_c.is_empty(), "seed 7002: {violations_c:?}");
    assert_ne!(a, c, "different seed should explore a different schedule");
}

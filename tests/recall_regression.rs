//! Recall regression floor: a fixed, fully seeded workload whose recall@10
//! must never drop below 0.80 for the two production index types at their
//! documented default-ish parameters (IVF_FLAT nprobe=16, HNSW ef=64), nor
//! below 0.75 for the scalar-quantized variant (IVF_SQ8 nprobe=16).
//!
//! Unlike `recall_quality.rs` (which sweeps many index types at generous
//! parameters), this test pins ONE deterministic dataset — 10k vectors,
//! 64 dims, seed 7001 — and modest search parameters, so any change that
//! silently degrades index quality trips it.

use milvus_datagen as datagen;
use milvus_index::registry::IndexRegistry;
use milvus_index::traits::{BuildParams, SearchParams};
use milvus_index::{Metric, VectorSet};

const N: usize = 10_000;
const DIM: usize = 64;
const DATA_SEED: u64 = 7001;
const QUERY_SEED: u64 = 7002;
const N_QUERIES: usize = 50;
const K: usize = 10;
const FLOOR: f32 = 0.80;

fn dataset() -> VectorSet {
    // Clustered like SIFT but at 64 dims: ~100 points per cluster.
    datagen::clustered(N, DIM, 100, 0.0, 218.0, 18.0, DATA_SEED)
}

fn recall_at_10(index_type: &str, sp: &SearchParams) -> f32 {
    recall_at_10_with(index_type, sp, |_| {})
}

fn recall_at_10_with(
    index_type: &str,
    sp: &SearchParams,
    tweak: impl FnOnce(&mut BuildParams),
) -> f32 {
    let data = dataset();
    let ids: Vec<i64> = (0..N as i64).collect();
    let registry = IndexRegistry::with_builtins();
    let mut params = BuildParams {
        metric: Metric::L2,
        nlist: 128,
        kmeans_iters: 5,
        hnsw_m: 16,
        hnsw_ef_construction: 150,
        ..Default::default()
    };
    tweak(&mut params);
    let index = registry.build(index_type, &data, &ids, &params).unwrap();
    let queries = datagen::queries_from(&data, N_QUERIES, 1.0, QUERY_SEED);
    let truth = datagen::ground_truth(&data, &ids, &queries, Metric::L2, K);
    let results: Vec<_> =
        (0..queries.len()).map(|i| index.search(queries.get(i), sp).unwrap()).collect();
    datagen::recall(&truth, &results)
}

#[test]
fn ivf_flat_nprobe16_recall_at_10_floor() {
    let sp = SearchParams { k: K, nprobe: 16, ..Default::default() };
    let r = recall_at_10("IVF_FLAT", &sp);
    assert!(r >= FLOOR, "IVF_FLAT nprobe=16 recall@10 regressed: {r:.3} < {FLOOR}");
}

#[test]
fn ivf_sq8_nprobe16_recall_at_10_floor() {
    // Scalar quantization trades a little recall for 4x smaller vectors;
    // 0.75 leaves room for quantization error but still catches regressions.
    let sp = SearchParams { k: K, nprobe: 16, ..Default::default() };
    let r = recall_at_10("IVF_SQ8", &sp);
    assert!(r >= 0.75, "IVF_SQ8 nprobe=16 recall@10 regressed: {r:.3} < 0.75");
}

#[test]
fn ivf_pq_m32_nprobe32_recall_at_10_floor() {
    // Product quantization is the lossiest compression in the suite. At 32
    // subquantizers × 8 bits over 64 dims (2 dims per codebook, 32
    // bytes/vector) the measured recall@10 is ~0.84 on this workload; 0.75
    // leaves room for codebook-training jitter while still catching any
    // distance-kernel or k-means regression.
    let sp = SearchParams { k: K, nprobe: 32, ..Default::default() };
    let r = recall_at_10_with("IVF_PQ", &sp, |p| p.pq_m = 32);
    assert!(r >= 0.75, "IVF_PQ pq_m=32 nprobe=32 recall@10 regressed: {r:.3} < 0.75");
}

#[test]
fn hnsw_ef64_recall_at_10_floor() {
    let sp = SearchParams { k: K, ef: 64, ..Default::default() };
    let r = recall_at_10("HNSW", &sp);
    assert!(r >= FLOOR, "HNSW ef=64 recall@10 regressed: {r:.3} < {FLOOR}");
}

#[test]
fn nsg_ef64_recall_at_10_floor() {
    // NSG at its default out-degree bound (R=32) and the same modest beam
    // width as HNSW. The parameters are pinned explicitly so a silent
    // default change also trips the floor.
    // Measured ~0.86 on this workload.
    let sp = SearchParams { k: K, ef: 64, ..Default::default() };
    let r = recall_at_10_with("NSG", &sp, |p| p.nsg_out_degree = 32);
    assert!(r >= FLOOR, "NSG R=32 ef=64 recall@10 regressed: {r:.3} < {FLOOR}");
}

#[test]
fn annoy_8trees_search_nodes_1024_recall_at_10_floor() {
    // Annoy with its default forest (8 trees) inspecting 1024 candidate
    // leaves. Measured 1.000 on this workload; 0.90 leaves room for
    // projection jitter while catching split/priority regressions.
    let sp = SearchParams { k: K, search_nodes: 1024, ..Default::default() };
    let r = recall_at_10_with("ANNOY", &sp, |p| p.annoy_n_trees = 8);
    assert!(r >= 0.90, "ANNOY trees=8 search_nodes=1024 recall@10 regressed: {r:.3} < 0.90");
}

#[test]
fn dataset_is_deterministic() {
    // The regression floor is only meaningful if the workload is pinned:
    // two independent generations must be bit-identical.
    let a = dataset();
    let b = dataset();
    assert_eq!(a.len(), b.len());
    for i in 0..a.len() {
        assert_eq!(a.get(i), b.get(i), "dataset generation must be deterministic (row {i})");
    }
}

//! Model-based testing: random operation sequences applied both to the real
//! LSM engine and to a trivial in-memory reference model must always agree —
//! on the live entity set, on point lookups, and on exact nearest-neighbor
//! results.

use std::collections::HashMap;
use std::sync::Arc;

use milvus_index::traits::SearchParams;
use milvus_index::{distance, Metric, TopK, VectorSet};
use milvus_storage::merge::MergePolicy;
use milvus_storage::object_store::MemoryStore;
use milvus_storage::{InsertBatch, LsmConfig, LsmEngine, Schema};
use rand::prelude::*;
use rand::rngs::StdRng;

#[derive(Debug, Clone)]
enum Op {
    /// Insert `count` fresh entities.
    Insert { count: u8 },
    /// Delete an entity by index into the set of ids ever created.
    Delete { pick: u16 },
    /// Re-insert (update) a previously deleted id with a new vector.
    Reinsert { pick: u16 },
    Flush,
    Merge,
}

fn random_op(rng: &mut StdRng) -> Op {
    match rng.gen_range(0..5) {
        0 => Op::Insert { count: rng.gen_range(1u8..20) },
        1 => Op::Delete { pick: rng.gen_range(0u16..u16::MAX) },
        2 => Op::Reinsert { pick: rng.gen_range(0u16..u16::MAX) },
        3 => Op::Flush,
        _ => Op::Merge,
    }
}

fn vector_for(id: i64, generation: u32) -> Vec<f32> {
    vec![id as f32, generation as f32]
}

/// The reference model: id → (vector, alive).
#[derive(Default)]
struct Model {
    rows: HashMap<i64, (Vec<f32>, bool)>,
    next_id: i64,
    generations: HashMap<i64, u32>,
}

impl Model {
    fn live(&self) -> Vec<i64> {
        let mut v: Vec<i64> =
            self.rows.iter().filter(|(_, (_, alive))| *alive).map(|(&id, _)| id).collect();
        v.sort_unstable();
        v
    }

    fn nearest(&self, q: &[f32], k: usize) -> Vec<i64> {
        let mut heap = TopK::new(k.max(1));
        for (&id, (v, alive)) in &self.rows {
            if *alive {
                heap.push(id, distance::l2_sq(q, v));
            }
        }
        heap.into_sorted().into_iter().map(|n| n.id).collect()
    }
}

fn engine() -> LsmEngine {
    LsmEngine::new(
        Schema::single("v", 2, Metric::L2),
        LsmConfig {
            flush_threshold_bytes: 1 << 20,
            auto_merge: false,
            merge_policy: MergePolicy { min_segments_per_merge: 2, ..Default::default() },
            persist_segments: true,
            ..Default::default()
        },
        Arc::new(MemoryStore::new()),
        None,
    )
    .unwrap()
}

fn apply(engine: &LsmEngine, model: &mut Model, op: &Op) {
    match op {
        Op::Insert { count } => {
            let ids: Vec<i64> = (model.next_id..model.next_id + *count as i64).collect();
            model.next_id += *count as i64;
            let mut vs = VectorSet::new(2);
            for &id in &ids {
                let v = vector_for(id, 0);
                vs.push(&v);
                model.rows.insert(id, (v, true));
                model.generations.insert(id, 0);
            }
            engine.insert(InsertBatch::single(ids, vs)).unwrap();
        }
        Op::Delete { pick } => {
            if model.next_id == 0 {
                return;
            }
            let id = (*pick as i64) % model.next_id;
            // The engine tolerates deletes of already-dead ids; mirror that.
            engine.delete(&[id]).unwrap();
            if let Some(row) = model.rows.get_mut(&id) {
                row.1 = false;
            }
        }
        Op::Reinsert { pick } => {
            if model.next_id == 0 {
                return;
            }
            let id = (*pick as i64) % model.next_id;
            let alive = model.rows.get(&id).map(|r| r.1).unwrap_or(false);
            if alive {
                return; // engine would reject a duplicate; model skips too
            }
            let generation = model.generations.get(&id).copied().unwrap_or(0) + 1;
            let v = vector_for(id, generation);
            let mut vs = VectorSet::new(2);
            vs.push(&v);
            engine.insert(InsertBatch::single(vec![id], vs)).unwrap();
            model.rows.insert(id, (v, true));
            model.generations.insert(id, generation);
        }
        Op::Flush => {
            engine.flush().unwrap();
        }
        Op::Merge => {
            engine.flush().unwrap();
            engine.maybe_merge().unwrap();
        }
    }
}

fn check_agreement(engine: &LsmEngine, model: &Model) {
    engine.flush().unwrap();
    let snap = engine.snapshot();

    // Live sets agree.
    let mut engine_live: Vec<i64> = snap
        .segments
        .iter()
        .flat_map(|s| {
            s.data().row_ids.iter().copied().filter(|&id| !s.is_deleted(id)).collect::<Vec<_>>()
        })
        .collect();
    engine_live.sort_unstable();
    assert_eq!(engine_live, model.live(), "live sets diverged");

    // Point lookups agree (including vector contents after updates).
    for (&id, (v, alive)) in &model.rows {
        match snap.locate(id) {
            Some(seg) if *alive => {
                let row = seg.data().row_ids.binary_search(&id).unwrap();
                assert_eq!(seg.data().vectors[0].get(row), &v[..], "vector of id {id}");
            }
            Some(_) => panic!("dead id {id} is visible"),
            None => assert!(!alive, "live id {id} not found"),
        }
    }

    // Exact nearest-neighbor results agree.
    if !model.live().is_empty() {
        let schema = engine.schema().clone();
        for probe_id in model.live().iter().take(3) {
            let q = model.rows[probe_id].0.clone();
            let expect = model.nearest(&q, 5);
            let lists: Vec<_> = snap
                .segments
                .iter()
                .map(|s| {
                    s.search_field(&schema, "v", &q, &SearchParams::top_k(5), None).unwrap()
                })
                .collect();
            let got: Vec<i64> =
                milvus_storage::segment::merge_segment_results(&lists, 5)
                    .iter()
                    .map(|n| n.id)
                    .collect();
            assert_eq!(got, expect, "nearest neighbors diverged for probe {probe_id}");
        }
    }
}

/// Run one randomized operation sequence per case, each reproducible from
/// the seed printed on failure.
fn run_cases(n_cases: u64, max_ops: usize, check: impl Fn(&[Op])) {
    for case in 0..n_cases {
        let seed = 0x5EED ^ case;
        let mut rng = StdRng::seed_from_u64(seed);
        let n_ops = rng.gen_range(1..max_ops);
        let ops: Vec<Op> = (0..n_ops).map(|_| random_op(&mut rng)).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check(&ops)));
        if let Err(payload) = result {
            eprintln!("model-based case failed for seed {seed:#x}: {ops:?}");
            std::panic::resume_unwind(payload);
        }
    }
}

#[test]
fn lsm_engine_matches_reference_model() {
    run_cases(24, 60, |ops| {
        let engine = engine();
        let mut model = Model::default();
        for op in ops {
            apply(&engine, &mut model, op);
        }
        check_agreement(&engine, &model);
    });
}

/// Same sequence, but agreement is also checked against an engine that went
/// through a full persist + recover cycle at the end.
#[test]
fn model_survives_codec_roundtrip() {
    run_cases(24, 40, |ops| {
        let store: Arc<MemoryStore> = Arc::new(MemoryStore::new());
        let engine = LsmEngine::new(
            Schema::single("v", 2, Metric::L2),
            LsmConfig {
                flush_threshold_bytes: 1 << 20,
                auto_merge: false,
                merge_policy: MergePolicy { min_segments_per_merge: 2, ..Default::default() },
                persist_segments: true,
                ..Default::default()
            },
            store.clone(),
            None,
        )
        .unwrap();
        let mut model = Model::default();
        for op in ops {
            apply(&engine, &mut model, op);
        }
        engine.flush().unwrap();

        // Reload everything from the object store and re-check.
        let reloaded = LsmEngine::open_from_store(
            Schema::single("v", 2, Metric::L2),
            LsmConfig { auto_merge: false, ..Default::default() },
            store,
            None,
        )
        .unwrap();
        check_agreement(&reloaded, &model);
    });
}

//! Recall-quality integration: every index type must meet a recall floor on
//! realistic clustered workloads, and the recall/parameter monotonicity the
//! evaluation relies on must hold.

use milvus_datagen as datagen;
use milvus_index::registry::IndexRegistry;
use milvus_index::traits::{BuildParams, SearchParams};
use milvus_index::Metric;

fn recall_of(index_type: &str, metric: Metric, sp: &SearchParams, n: usize) -> f32 {
    let data = match metric {
        Metric::InnerProduct | Metric::Cosine => datagen::deep_like(n, 601),
        _ => datagen::sift_like(n, 601),
    };
    let ids: Vec<i64> = (0..n as i64).collect();
    let registry = IndexRegistry::with_builtins();
    let params = BuildParams {
        metric,
        nlist: 64,
        kmeans_iters: 5,
        hnsw_m: 16,
        hnsw_ef_construction: 150,
        nsg_out_degree: 24,
        annoy_n_trees: 16,
        pq_m: 16,
        ..Default::default()
    };
    let index = registry.build(index_type, &data, &ids, &params).unwrap();
    let queries = datagen::queries_from(&data, 30, 1.0, 602);
    let truth = datagen::ground_truth(&data, &ids, &queries, metric, sp.k);
    let results: Vec<_> =
        (0..queries.len()).map(|i| index.search(queries.get(i), sp).unwrap()).collect();
    datagen::recall(&truth, &results)
}

#[test]
fn flat_is_exact() {
    let sp = SearchParams::top_k(10);
    assert_eq!(recall_of("FLAT", Metric::L2, &sp, 2_000), 1.0);
}

#[test]
fn ivf_flat_recall_floor() {
    let sp = SearchParams { k: 10, nprobe: 32, ..Default::default() };
    assert!(recall_of("IVF_FLAT", Metric::L2, &sp, 4_000) >= 0.95);
}

#[test]
fn ivf_sq8_recall_floor() {
    let sp = SearchParams { k: 10, nprobe: 32, ..Default::default() };
    assert!(recall_of("IVF_SQ8", Metric::L2, &sp, 4_000) >= 0.85);
}

#[test]
fn ivf_pq_recall_floor() {
    // PQ trades recall for compression: the paper's Figure 8 shows IVF_PQ
    // topping out well below the other indexes' recall, which is exactly the
    // behaviour here. Evaluated at the paper's k=50.
    let sp = SearchParams { k: 50, nprobe: 32, ..Default::default() };
    assert!(recall_of("IVF_PQ", Metric::L2, &sp, 4_000) >= 0.5);
}

#[test]
fn hnsw_recall_floor() {
    let sp = SearchParams { k: 10, ef: 128, ..Default::default() };
    assert!(recall_of("HNSW", Metric::L2, &sp, 4_000) >= 0.95);
}

#[test]
fn nsg_recall_floor() {
    let sp = SearchParams { k: 10, ef: 128, ..Default::default() };
    assert!(recall_of("NSG", Metric::L2, &sp, 3_000) >= 0.9);
}

#[test]
fn annoy_recall_floor() {
    let sp = SearchParams { k: 10, search_nodes: 3_000, ..Default::default() };
    assert!(recall_of("ANNOY", Metric::L2, &sp, 3_000) >= 0.8);
}

#[test]
fn inner_product_and_cosine_recall() {
    let sp = SearchParams { k: 10, nprobe: 32, ..Default::default() };
    assert!(recall_of("IVF_FLAT", Metric::InnerProduct, &sp, 3_000) >= 0.9);
    assert!(recall_of("IVF_FLAT", Metric::Cosine, &sp, 3_000) >= 0.9);
    let sp = SearchParams { k: 10, ef: 128, ..Default::default() };
    assert!(recall_of("HNSW", Metric::Cosine, &sp, 3_000) >= 0.9);
}

#[test]
fn recall_monotone_in_nprobe_and_ef() {
    let probe = |np| {
        recall_of(
            "IVF_FLAT",
            Metric::L2,
            &SearchParams { k: 10, nprobe: np, ..Default::default() },
            3_000,
        )
    };
    let (lo, mid, hi) = (probe(1), probe(8), probe(64));
    assert!(lo <= mid + 0.02 && mid <= hi + 0.02, "nprobe recall not monotone: {lo} {mid} {hi}");
    assert!(hi >= 0.95);

    let ef = |e| {
        recall_of("HNSW", Metric::L2, &SearchParams { k: 10, ef: e, ..Default::default() }, 3_000)
    };
    let (lo, hi) = (ef(10), ef(200));
    assert!(lo <= hi + 0.02, "ef recall not monotone: {lo} {hi}");
}

#[test]
fn binary_metrics_brute_force_quality() {
    use milvus_index::binary::{pack_bits, BinaryVectorSet};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    // 64-bit fingerprints in two families (low bits vs high bits set).
    let mut rng = StdRng::seed_from_u64(603);
    let mut set = BinaryVectorSet::new(64);
    for i in 0..200 {
        let bits: Vec<bool> = (0..64)
            .map(|b| {
                let family_low = i % 2 == 0;
                let in_half = if family_low { b < 32 } else { b >= 32 };
                in_half && rng.gen_bool(0.8)
            })
            .collect();
        set.push(&pack_bits(&bits));
    }
    // A low-family probe must retrieve low-family members first.
    let probe = pack_bits(&(0..64).map(|b| b < 32).collect::<Vec<_>>());
    for metric in [Metric::Hamming, Metric::Jaccard, Metric::Tanimoto] {
        let res = set.search(metric, &probe, 20);
        let low_family = res.iter().filter(|(row, _)| row % 2 == 0).count();
        assert!(low_family >= 18, "{metric}: only {low_family}/20 from the right family");
    }
}

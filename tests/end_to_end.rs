//! End-to-end integration: the full system facade from ingestion to search,
//! spanning milvus-core, milvus-storage and milvus-index.

use std::sync::Arc;

use milvus_core::{CollectionConfig, Milvus};
use milvus_datagen as datagen;
use milvus_index::traits::SearchParams;
use milvus_index::{Metric, VectorSet};
use milvus_storage::object_store::LocalFsStore;
use milvus_storage::{InsertBatch, Schema};

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("milvus-it-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn lifecycle_over_real_workload() {
    let milvus = Milvus::new();
    let schema = Schema::single("emb", 96, Metric::L2).with_attribute("ts");
    let col = milvus
        .create_collection("videos", schema, CollectionConfig::for_tests())
        .unwrap();

    let n = 3_000;
    let data = datagen::deep_like(n, 42);
    col.insert(InsertBatch {
        ids: (0..n as i64).collect(),
        vectors: vec![data.clone()],
        attributes: vec![datagen::attributes_uniform(n, 0.0, 1000.0, 43)],
    })
    .unwrap();
    col.flush().unwrap();
    assert_eq!(col.num_entities(), n);

    // Recall of the brute-force segment scan must be perfect.
    let queries = datagen::queries_from(&data, 20, 0.01, 44);
    let ids: Vec<i64> = (0..n as i64).collect();
    let truth = datagen::ground_truth(&data, &ids, &queries, Metric::L2, 10);
    for (qi, expected) in truth.iter().enumerate() {
        let hits = col.search("emb", queries.get(qi), &SearchParams::top_k(10)).unwrap();
        let got: Vec<i64> = hits.iter().map(|h| h.id).collect();
        assert_eq!(&got, expected, "query {qi}");
    }

    // Index build changes execution but not (materially) the results.
    let built = col.build_index("emb", "HNSW").unwrap();
    assert_eq!(built, 1);
    let sp = SearchParams { k: 10, ef: 200, ..Default::default() };
    let mut hits_total = 0;
    for (qi, expected) in truth.iter().enumerate() {
        let hits = col.search("emb", queries.get(qi), &sp).unwrap();
        let tset: std::collections::HashSet<i64> = expected.iter().copied().collect();
        hits_total += hits.iter().filter(|h| tset.contains(&h.id)).count();
    }
    assert!(
        hits_total as f32 / (queries.len() * 10) as f32 >= 0.95,
        "indexed recall too low: {hits_total}"
    );
}

#[test]
fn durability_across_restart() {
    let dir = tmpdir("durability");
    let store = Arc::new(LocalFsStore::new(dir.join("store")).unwrap());
    let wal = dir.join("wal.log");

    let schema = Schema::single("v", 8, Metric::L2);
    let mut config = CollectionConfig::for_tests();
    config.wal_path = Some(wal.clone());

    let data = datagen::clustered(500, 8, 8, -1.0, 1.0, 0.2, 7);
    {
        let milvus = Milvus::with_store(store.clone());
        let col = milvus.create_collection("persisted", schema.clone(), config.clone()).unwrap();
        col.insert(InsertBatch::single((0..500).collect(), data.clone())).unwrap();
        col.flush().unwrap();
        // More rows that only reach the WAL (no flush) — simulating a crash.
        col.insert(InsertBatch::single(
            (500..600).collect(),
            VectorSet::from_flat(8, vec![0.25; 100 * 8]),
        ))
        .unwrap();
        // Give the async worker a moment to drain, then "crash" (drop).
        std::thread::sleep(std::time::Duration::from_millis(50));
    }

    // Restart: flushed segments come from the store, the tail from the WAL.
    let milvus = Milvus::with_store(store);
    let col = milvus.create_collection("persisted", schema, config).unwrap();
    col.flush().unwrap();
    assert_eq!(col.num_entities(), 600);
    let hit = col.search("v", data.get(123), &SearchParams::top_k(1)).unwrap();
    assert_eq!(hit[0].id, 123);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn multiple_collections_are_isolated() {
    let milvus = Milvus::new();
    let a = milvus
        .create_collection("a", Schema::single("v", 4, Metric::L2), CollectionConfig::for_tests())
        .unwrap();
    let b = milvus
        .create_collection("b", Schema::single("v", 4, Metric::L2), CollectionConfig::for_tests())
        .unwrap();
    a.insert(InsertBatch::single(vec![1], VectorSet::from_flat(4, vec![1.0; 4]))).unwrap();
    b.insert(InsertBatch::single(vec![2], VectorSet::from_flat(4, vec![2.0; 4]))).unwrap();
    a.flush().unwrap();
    b.flush().unwrap();
    assert_eq!(a.num_entities(), 1);
    assert_eq!(b.num_entities(), 1);
    assert!(a.get_entity(2).is_none());
    assert!(b.get_entity(1).is_none());
}

#[test]
fn stats_reflect_system_state() {
    let milvus = Milvus::new();
    let col = milvus
        .create_collection(
            "stats",
            Schema::single("v", 4, Metric::L2),
            CollectionConfig::for_tests(),
        )
        .unwrap();
    let s0 = col.stats();
    assert_eq!((s0.segments, s0.live_rows, s0.pending_rows), (0, 0, 0));

    col.insert(InsertBatch::single((0..100).collect(), VectorSet::from_flat(4, vec![0.5; 400])))
        .unwrap();
    col.flush().unwrap();
    col.insert(InsertBatch::single((100..150).collect(), VectorSet::from_flat(4, vec![0.1; 200])))
        .unwrap();
    col.flush().unwrap();
    let s = col.stats();
    assert_eq!(s.segments, 2);
    assert_eq!(s.live_rows, 150);
    assert!(s.memory_bytes > 0);
}

//! Cross-crate integration test package; see the [[test]] targets.

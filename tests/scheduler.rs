//! ISSUE 9 acceptance: the coalescing query scheduler.
//!
//! Twin collections — one with coalescing on, one off — hold identical
//! data (and identically seeded index builds), so the serial twin is the
//! ground truth the coalesced results must match **bit-identically**:
//! `SearchHit` carries `f32` scores, and equality below is exact.
//!
//! Scan-delay injection is keyed by global segment id and the metrics
//! registry is process-global, so the tests serialize on [`GLOBAL_STATE`].

use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

use milvus_core::scheduler::{group_batch, SearchRequest};
use milvus_core::{Collection, CollectionConfig, Milvus, MilvusError, SearchHit};
use milvus_index::traits::SearchParams;
use milvus_index::{Metric, VectorSet};
use milvus_storage::segment::{clear_scan_delays, inject_scan_delay};
use milvus_storage::{InsertBatch, Schema};

static GLOBAL_STATE: Mutex<()> = Mutex::new(());

const DIM: usize = 16;

fn gen_vector(i: u64) -> Vec<f32> {
    // Deterministic pseudo-random vector from a splitmix-style hash.
    let mut x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0xD1B5);
    (0..DIM)
        .map(|_| {
            x ^= x >> 30;
            x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x ^= x >> 27;
            ((x >> 40) as f32 / (1 << 24) as f32) * 10.0
        })
        .collect()
}

/// Build a (coalescing-on, coalescing-off) twin pair over identical data.
/// `index` optionally builds the same index type on both twins.
fn twins(
    m: &Milvus,
    name: &str,
    n: i64,
    index: Option<&str>,
) -> (Arc<Collection>, Arc<Collection>) {
    let schema = Schema::single("v", DIM, Metric::L2).with_attribute("price");
    let mut on_cfg = CollectionConfig::for_tests();
    on_cfg.scheduler.window = Duration::from_millis(200);
    on_cfg.scheduler.max_batch = 4;
    let mut off_cfg = CollectionConfig::for_tests();
    off_cfg.scheduler.coalescing = false;
    let on = m.create_collection(&format!("{name}_on"), schema.clone(), on_cfg).unwrap();
    let off = m.create_collection(&format!("{name}_off"), schema, off_cfg).unwrap();
    for col in [&on, &off] {
        let ids: Vec<i64> = (0..n).collect();
        let mut vs = VectorSet::new(DIM);
        let mut attrs = Vec::new();
        for &id in &ids {
            vs.push(&gen_vector(id as u64));
            attrs.push(id as f64);
        }
        col.insert(InsertBatch { ids, vectors: vec![vs], attributes: vec![attrs] }).unwrap();
        col.flush().unwrap();
        if let Some(ty) = index {
            assert_eq!(col.build_index("v", ty).unwrap(), 1);
        }
    }
    (on, off)
}

fn counter(name: &'static str, label: &str) -> u64 {
    milvus_obs::registry().snapshot().counter(name, label)
}

/// Fire `queries` concurrently at `on` (barrier-released so they pile into
/// the coalescer) with the first segment's scans slowed so the passthrough
/// holder keeps the rendezvous open, and return the per-query results in
/// submit order.
fn run_concurrent(
    on: &Arc<Collection>,
    queries: &[(Vec<f32>, SearchParams)],
) -> Vec<Result<Vec<SearchHit>, MilvusError>> {
    let seg_id = on.snapshot().segments[0].id;
    inject_scan_delay(seg_id, Duration::from_millis(40));
    let barrier = Barrier::new(queries.len());
    let results = std::thread::scope(|s| {
        let handles: Vec<_> = queries
            .iter()
            .map(|(q, p)| {
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    on.search("v", q, p)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>()
    });
    clear_scan_delays();
    results
}

#[test]
fn coalesced_flat_scan_is_bit_identical_to_serial_with_mixed_k() {
    let _g = GLOBAL_STATE.lock().unwrap_or_else(|e| e.into_inner());
    let m = Milvus::new();
    // No index: the coalesced path takes the zero-copy cache-aware batch
    // engine at max(k), truncating each query to its own k.
    let (on, off) = twins(&m, "sched_flat", 400, None);
    let queries: Vec<(Vec<f32>, SearchParams)> = (0..12)
        .map(|i| (gen_vector(1000 + i), SearchParams::top_k([3, 7, 10][i as usize % 3])))
        .collect();
    let expected: Vec<Vec<SearchHit>> =
        queries.iter().map(|(q, p)| off.search("v", q, p).unwrap()).collect();

    let before = counter(milvus_obs::SCHED_COALESCED_QUERIES, "sched_flat_on");
    let results = run_concurrent(&on, &queries);
    for (res, exp) in results.iter().zip(&expected) {
        assert_eq!(res.as_ref().unwrap(), exp, "coalesced flat scan diverged from serial");
    }
    let coalesced = counter(milvus_obs::SCHED_COALESCED_QUERIES, "sched_flat_on") - before;
    assert!(coalesced >= 8, "expected most of 12 piled-up queries to coalesce, got {coalesced}");
    assert!(counter(milvus_obs::SCHED_COALESCED_BATCHES, "sched_flat_on") > 0);
}

#[test]
fn coalesced_ivf_sq8_and_pq_are_bit_identical_to_serial() {
    let _g = GLOBAL_STATE.lock().unwrap_or_else(|e| e.into_inner());
    let m = Milvus::new();
    for (name, index) in [("sched_sq8", "IVF_SQ8"), ("sched_pq", "IVF_PQ")] {
        let (on, off) = twins(&m, name, 600, Some(index));
        // Same nprobe (one group), mixed k: the IVF bucket-major batch runs
        // at max(k); the sorted prefix property keeps truncation exact even
        // through the fused SQ8 scan and the PQ ADC early-abandon pruning.
        let queries: Vec<(Vec<f32>, SearchParams)> = (0..8)
            .map(|i| {
                let p = SearchParams { k: [4, 9][i as usize % 2], nprobe: 6, ..Default::default() };
                (gen_vector(2000 + i), p)
            })
            .collect();
        let expected: Vec<Vec<SearchHit>> =
            queries.iter().map(|(q, p)| off.search("v", q, p).unwrap()).collect();
        let results = run_concurrent(&on, &queries);
        for (res, exp) in results.iter().zip(&expected) {
            assert_eq!(res.as_ref().unwrap(), exp, "coalesced {index} diverged from serial");
        }
    }
}

#[test]
fn coalesced_filtered_search_is_bit_identical_to_serial() {
    let _g = GLOBAL_STATE.lock().unwrap_or_else(|e| e.into_inner());
    let m = Milvus::new();
    let (on, off) = twins(&m, "sched_filt", 300, None);
    let sp = SearchParams::top_k(5);
    let queries: Vec<Vec<f32>> = (0..6).map(|i| gen_vector(3000 + i)).collect();
    let expected: Vec<Vec<SearchHit>> = queries
        .iter()
        .map(|q| off.filtered_search("v", q, "price", 50.0, 250.0, &sp).unwrap())
        .collect();

    let seg_id = on.snapshot().segments[0].id;
    inject_scan_delay(seg_id, Duration::from_millis(40));
    let barrier = Barrier::new(queries.len());
    let results = std::thread::scope(|s| {
        let handles: Vec<_> = queries
            .iter()
            .map(|q| {
                let (barrier, on, sp) = (&barrier, &on, &sp);
                s.spawn(move || {
                    barrier.wait();
                    on.filtered_search("v", q, "price", 50.0, 250.0, sp)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>()
    });
    clear_scan_delays();
    for (res, exp) in results.iter().zip(&expected) {
        assert_eq!(res.as_ref().unwrap(), exp, "coalesced filtered search diverged");
    }
}

#[test]
fn mixed_params_split_into_groups_and_all_match_serial() {
    let _g = GLOBAL_STATE.lock().unwrap_or_else(|e| e.into_inner());
    let m = Milvus::new();
    let (on, off) = twins(&m, "sched_mixed", 500, Some("IVF_FLAT"));
    // Three parameter shapes in one storm: nprobe 4 (mixed k — one group at
    // max(k)), nprobe 12 (separate group), and nprobe 4 again. The batch
    // engines assume one shared parameter set per invocation, so grouping
    // must partition these; results must still match the serial twin.
    let queries: Vec<(Vec<f32>, SearchParams)> = (0..9)
        .map(|i| {
            let p = match i % 3 {
                0 => SearchParams { k: 3, nprobe: 4, ..Default::default() },
                1 => SearchParams { k: 8, nprobe: 4, ..Default::default() },
                _ => SearchParams { k: 5, nprobe: 12, ..Default::default() },
            };
            (gen_vector(4000 + i as u64), p)
        })
        .collect();
    let expected: Vec<Vec<SearchHit>> =
        queries.iter().map(|(q, p)| off.search("v", q, p).unwrap()).collect();
    let results = run_concurrent(&on, &queries);
    for (res, exp) in results.iter().zip(&expected) {
        assert_eq!(res.as_ref().unwrap(), exp, "mixed-params coalescing diverged");
    }
}

#[test]
fn single_query_passes_through_without_window_latency() {
    let _g = GLOBAL_STATE.lock().unwrap_or_else(|e| e.into_inner());
    let m = Milvus::new();
    let schema = Schema::single("v", DIM, Metric::L2);
    let mut cfg = CollectionConfig::for_tests();
    // A pathological 5 s window: if a lone query were held for the window,
    // this test would take seconds. Passthrough must make it instant.
    cfg.scheduler.window = Duration::from_secs(5);
    let col = m.create_collection("sched_pass", schema, cfg).unwrap();
    let ids: Vec<i64> = (0..200).collect();
    let mut vs = VectorSet::new(DIM);
    for &id in &ids {
        vs.push(&gen_vector(id as u64));
    }
    col.insert(InsertBatch::single(ids, vs)).unwrap();
    col.flush().unwrap();

    let before = counter(milvus_obs::SCHED_PASSTHROUGH, "sched_pass");
    let start = Instant::now();
    let hits = col.search("v", &gen_vector(9999), &SearchParams::top_k(5)).unwrap();
    let elapsed = start.elapsed();
    assert_eq!(hits.len(), 5);
    assert!(
        elapsed < Duration::from_secs(2),
        "lone query must not pay the coalescing window: took {elapsed:?}"
    );
    assert_eq!(counter(milvus_obs::SCHED_PASSTHROUGH, "sched_pass") - before, 1);
}

#[test]
fn shed_queries_fail_typed_while_admitted_queries_stay_correct() {
    let _g = GLOBAL_STATE.lock().unwrap_or_else(|e| e.into_inner());
    let m = Milvus::new();
    let schema = Schema::single("v", DIM, Metric::L2);
    let mut cfg = CollectionConfig::for_tests();
    cfg.scheduler.adaptive = false;
    cfg.scheduler.max_inflight = 1;
    let col = m.create_collection("sched_shed", schema.clone(), cfg).unwrap();
    let reference =
        m.create_collection("sched_shed_ref", schema, CollectionConfig::for_tests()).unwrap();
    for c in [&col, &reference] {
        let ids: Vec<i64> = (0..200).collect();
        let mut vs = VectorSet::new(DIM);
        for &id in &ids {
            vs.push(&gen_vector(id as u64));
        }
        c.insert(InsertBatch::single(ids, vs)).unwrap();
        c.flush().unwrap();
    }
    let q = gen_vector(7777);
    let sp = SearchParams::top_k(4);
    let expected = reference.search("v", &q, &sp).unwrap();

    // Pin one admitted query in the scan; budget 1 sheds every concurrent
    // arrival with the typed error — never a silently degraded result.
    let seg_id = col.snapshot().segments[0].id;
    inject_scan_delay(seg_id, Duration::from_millis(800));
    let shed_before = counter(milvus_obs::SCHED_SHED, "sched_shed");
    let pinned = {
        let (col, q, sp) = (Arc::clone(&col), q.clone(), sp.clone());
        std::thread::spawn(move || col.search("v", &q, &sp))
    };
    std::thread::sleep(Duration::from_millis(200));
    let err = col.search("v", &q, &sp).expect_err("second query must shed");
    match err {
        MilvusError::Overloaded { collection, inflight, budget } => {
            assert_eq!(collection, "sched_shed");
            assert_eq!((inflight, budget), (1, 1));
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    assert!(counter(milvus_obs::SCHED_SHED, "sched_shed") > shed_before);

    // The admitted query's answer is exactly the serial reference answer.
    let hits = pinned.join().unwrap().unwrap();
    clear_scan_delays();
    assert_eq!(hits, expected, "admitted query degraded under shedding");
    // The freed slot readmits immediately.
    assert_eq!(col.search("v", &q, &sp).unwrap(), expected);
}

#[test]
fn search_many_matches_per_query_serial_results() {
    let _g = GLOBAL_STATE.lock().unwrap_or_else(|e| e.into_inner());
    let m = Milvus::new();
    let (on, off) = twins(&m, "sched_many", 350, None);
    let mut qs = VectorSet::new(DIM);
    for i in 0..10u64 {
        qs.push(&gen_vector(5000 + i));
    }
    let sp = SearchParams::top_k(6);
    let lists = on.search_many("v", &qs, &sp).unwrap();
    assert_eq!(lists.len(), 10);
    for (i, list) in lists.iter().enumerate() {
        let exp = off.search("v", qs.get(i), &sp).unwrap();
        assert_eq!(list, &exp, "search_many query {i} diverged from serial");
    }
}

#[test]
fn grouping_is_deterministic_for_a_seeded_request_storm() {
    let _g = GLOBAL_STATE.lock().unwrap_or_else(|e| e.into_inner());
    // A deterministically shuffled request mix must group identically on
    // every call: grouping is a pure function of the input order.
    let mut reqs = Vec::new();
    let mut x: u64 = 42;
    for i in 0..40u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let params = SearchParams {
            k: 1 + (x % 16) as usize,
            nprobe: [4, 8][(x >> 8) as usize % 2],
            ..Default::default()
        };
        if x.is_multiple_of(5) {
            reqs.push(SearchRequest::Filtered {
                field: "v".into(),
                query: gen_vector(i),
                attr: "price".into(),
                lo: (x % 3) as f64,
                hi: 100.0,
                params,
            });
        } else {
            reqs.push(SearchRequest::Vector { field: "v".into(), query: gen_vector(i), params });
        }
    }
    let groups = group_batch(&reqs);
    for _ in 0..5 {
        assert_eq!(group_batch(&reqs), groups, "grouping must be deterministic");
    }
    // Invariants: a partition of all indices, first-occurrence ordered.
    let mut seen: Vec<usize> = groups.iter().flatten().copied().collect();
    seen.sort_unstable();
    assert_eq!(seen, (0..reqs.len()).collect::<Vec<_>>());
    let firsts: Vec<usize> = groups.iter().map(|g| g[0]).collect();
    let mut sorted = firsts.clone();
    sorted.sort_unstable();
    assert_eq!(firsts, sorted, "groups must appear in first-occurrence order");
    // Vector groups are k-insensitive: every member of a group shares
    // (nprobe, kind); k may differ for vector requests.
    for g in &groups {
        let nprobe0 = reqs[g[0]].params().nprobe;
        assert!(g.iter().all(|&i| reqs[i].params().nprobe == nprobe0));
    }
}

//! End-to-end observability: exercising the query/ingest/storage paths
//! through the public `Milvus` facade must leave a coherent trail in
//! `Milvus::metrics_snapshot()` and in the Prometheus exposition.
//!
//! The registry is process-global and tests run concurrently, so every
//! assertion here is either a *delta* between two snapshots or scoped to a
//! collection label unique to this file.

use milvus_core::{CollectionConfig, Milvus};
use milvus_index::traits::SearchParams;
use milvus_index::{Metric, VectorSet};
use milvus_obs as obs;
use milvus_storage::{InsertBatch, Schema};

/// The flight recorder is process-global: tests that tick it serialize on
/// this guard so their frames stay adjacent in the ring.
fn tick_guard() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

fn batch(ids: std::ops::Range<i64>, dim: usize) -> InsertBatch {
    let id_vec: Vec<i64> = ids.collect();
    let mut vs = VectorSet::new(dim);
    for &id in &id_vec {
        let mut v = vec![0.0f32; dim];
        v[0] = id as f32;
        vs.push(&v);
    }
    InsertBatch::single(id_vec, vs)
}

#[test]
fn full_lifecycle_leaves_a_metric_trail() {
    let name = "obs_lifecycle";
    let wal_dir = std::env::temp_dir().join(format!("milvus-obs-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    std::fs::create_dir_all(&wal_dir).unwrap();
    let m = Milvus::new();
    let before = m.metrics_snapshot();

    let config = CollectionConfig {
        wal_path: Some(wal_dir.join("wal.log")),
        ..CollectionConfig::for_tests()
    };
    let col = m
        .create_collection(name, Schema::single("v", 8, Metric::L2), config)
        .unwrap();
    col.insert(batch(0..500, 8)).unwrap();
    col.insert(batch(500..600, 8)).unwrap();
    col.flush().unwrap();
    col.build_index("v", "IVF_FLAT").unwrap();
    let sp = SearchParams { k: 5, nprobe: 8, ..Default::default() };
    for q in 0..7 {
        let hits = col.search("v", &[q as f32, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0], &sp).unwrap();
        assert_eq!(hits[0].id, q);
    }
    col.delete(vec![0, 1]).unwrap();
    col.flush().unwrap();

    let after = m.metrics_snapshot();
    let d = |metric: &str| after.counter(metric, name) - before.counter(metric, name);

    assert_eq!(d(obs::INGEST_BATCHES), 2);
    assert_eq!(d(obs::INGEST_ROWS), 600);
    assert_eq!(d(obs::QUERY_TOTAL), 7);
    assert_eq!(d(obs::DELETE_ROWS), 2);
    assert!(d(obs::INDEX_BUILDS) >= 1, "index build must be counted");
    assert!(d(obs::MEMTABLE_FLUSHES) >= 1, "flush that persisted rows must be counted");
    assert!(d(obs::WAL_APPENDS) >= 3, "inserts and deletes must hit the WAL");
    assert!(d(obs::OBJECT_PUTS) >= 1, "segment publication must hit the object store");
    assert_eq!(d(obs::QUERY_ERRORS), 0);

    // Latency histograms saw exactly the operations we issued.
    let q_hist_delta = after.histogram(obs::QUERY_LATENCY, name).count
        - before.histogram(obs::QUERY_LATENCY, name).count;
    assert_eq!(q_hist_delta, 7);
    let ingest_hist_delta = after.histogram(obs::INGEST_LATENCY, name).count
        - before.histogram(obs::INGEST_LATENCY, name).count;
    assert_eq!(ingest_hist_delta, 2);

    // The segment gauge tracks the published snapshot.
    assert_eq!(after.gauge(obs::SEGMENTS, name), col.snapshot().segments.len() as i64);
    std::fs::remove_dir_all(&wal_dir).unwrap();
}

#[test]
fn quantiles_are_monotone_and_bounded() {
    let name = "obs_quantiles";
    let m = Milvus::new();
    let col = m
        .create_collection(name, Schema::single("v", 4, Metric::L2), CollectionConfig::for_tests())
        .unwrap();
    col.insert(batch(0..200, 4)).unwrap();
    col.flush().unwrap();
    for q in 0..20 {
        col.search("v", &[q as f32, 0.0, 0.0, 0.0], &SearchParams::top_k(3)).unwrap();
    }
    let h = m.metrics_snapshot().histogram(obs::QUERY_LATENCY, name);
    assert!(h.count >= 20);
    let (p50, p95, p99) = (h.quantile_us(0.50), h.quantile_us(0.95), h.quantile_us(0.99));
    assert!(p50 > 0.0);
    assert!(p50 <= p95 && p95 <= p99, "quantiles must be monotone: {p50} {p95} {p99}");
    // Mean must be inside the observed range implied by the buckets.
    assert!(h.sum_us >= h.count, "sub-microsecond searches are implausible");
}

#[test]
fn error_paths_are_counted_not_hidden() {
    let name = "obs_errors";
    let m = Milvus::new();
    let col = m
        .create_collection(name, Schema::single("v", 4, Metric::L2), CollectionConfig::for_tests())
        .unwrap();
    col.insert(batch(0..10, 4)).unwrap();
    col.flush().unwrap();

    let before = m.metrics_snapshot();
    // Wrong dimensionality: the search fails, and the failure is counted.
    assert!(col.search("v", &[1.0, 2.0], &SearchParams::top_k(3)).is_err());
    let after = m.metrics_snapshot();
    assert_eq!(
        after.counter(obs::QUERY_ERRORS, name) - before.counter(obs::QUERY_ERRORS, name),
        1,
        "a failed search must increment {}",
        obs::QUERY_ERRORS
    );
}

#[test]
fn prometheus_exposition_is_well_formed() {
    let name = "obs_prom";
    let m = Milvus::new();
    let col = m
        .create_collection(name, Schema::single("v", 4, Metric::L2), CollectionConfig::for_tests())
        .unwrap();
    col.insert(batch(0..50, 4)).unwrap();
    col.flush().unwrap();
    col.search("v", &[1.0, 0.0, 0.0, 0.0], &SearchParams::top_k(3)).unwrap();

    let text = milvus_obs::registry().render_prometheus();
    assert!(text.contains(&format!("milvus_query_total{{collection=\"{name}\"}} 1")));
    assert!(text.contains(&format!("milvus_ingest_rows_total{{collection=\"{name}\"}} 50")));
    assert!(text.contains("# TYPE milvus_query_latency_seconds histogram"));
    assert!(text.contains("# TYPE milvus_segments gauge"));
    // Histogram series must carry both the le= and collection= labels, end
    // with +Inf, and expose _sum/_count.
    assert!(text.contains(&format!("milvus_query_latency_seconds_bucket{{collection=\"{name}\",le=\"+Inf\"}}")));
    assert!(text.contains(&format!("milvus_query_latency_seconds_count{{collection=\"{name}\"}}")));
    assert!(text.contains(&format!("milvus_query_latency_seconds_sum{{collection=\"{name}\"}}")));
    // Every non-comment line is `name{labels} value` or `name value`.
    for line in text.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
        let mut parts = line.rsplitn(2, ' ');
        let value = parts.next().unwrap();
        assert!(
            value.parse::<f64>().is_ok(),
            "exposition line has a non-numeric value: {line}"
        );
    }
}

/// ISSUE 7 acceptance: the flight-recorder's windowed p99 (derived from
/// histogram bucket *diffs* between two frames) must agree with the live
/// histogram's p99 to within one bucket, under a seeded scan delay that
/// pushes search latency into a bucket no other test in this process hits.
#[test]
fn windowed_p99_tracks_live_histogram_within_one_bucket() {
    let _serial = tick_guard();
    let name = "obs_windowed_p99";
    let m = Milvus::new();
    let col = m
        .create_collection(name, Schema::single("v", 4, Metric::L2), CollectionConfig::for_tests())
        .unwrap();
    col.insert(batch(0..200, 4)).unwrap();
    col.flush().unwrap();
    for seg in &col.snapshot().segments {
        milvus_storage::inject_scan_delay(seg.id, std::time::Duration::from_millis(3));
    }

    m.tick_timeseries();
    for q in 0..20 {
        col.search("v", &[q as f32, 0.0, 0.0, 0.0], &SearchParams::top_k(3)).unwrap();
    }
    m.tick_timeseries();
    milvus_storage::clear_scan_delays();

    let live = m.metrics_snapshot().histogram(obs::QUERY_LATENCY, name);
    let windowed = m.timeseries().windowed_histogram(obs::QUERY_LATENCY, name, 1);
    assert_eq!(windowed.count, 20, "all 20 searches must land in the window");
    assert!(live.count >= 20);

    // The injected 3ms floor must dominate: p99 lives in a microsecond
    // bucket at or above 3000µs.
    let live_p99 = live.quantile_us(0.99);
    let win_p99 = windowed.p99_us();
    assert!(live_p99 >= 3000.0, "scan delay must dominate: live p99 {live_p99}µs");
    assert!(win_p99 >= 3000.0, "scan delay must dominate: windowed p99 {win_p99}µs");

    let bucket_of = |v: f64| {
        obs::BUCKET_BOUNDS_US
            .iter()
            .position(|&b| v <= b as f64)
            .unwrap_or(obs::BUCKET_BOUNDS_US.len())
    };
    let (lb, wb) = (bucket_of(live_p99), bucket_of(win_p99));
    assert!(
        lb.abs_diff(wb) <= 1,
        "windowed p99 {win_p99}µs (bucket {wb}) must be within one bucket of live p99 {live_p99}µs (bucket {lb})"
    );
}

/// Satellite 3: the new debug/health REST endpoints answer well-formed
/// JSON end-to-end (socket up, routed, serialized) — the full-payload
/// shape assertions live in `crates/core/src/rest.rs` and the CI smoke.
#[test]
fn rest_debug_endpoints_return_well_formed_json() {
    use milvus_core::rest::RestServer;
    use std::io::{Read as _, Write as _};

    let _serial = tick_guard();
    let name = "obs_rest_endpoints";
    let m = std::sync::Arc::new(Milvus::new());
    let col = m
        .create_collection(name, Schema::single("v", 4, Metric::L2), CollectionConfig::for_tests())
        .unwrap();
    col.insert(batch(0..100, 4)).unwrap();
    col.flush().unwrap();
    let server = RestServer::serve(std::sync::Arc::clone(&m), "127.0.0.1:0").unwrap();
    let addr = server.addr();

    let request = |method: &str, path: &str, body: &str| -> (String, serde::Value) {
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        write!(
            s,
            "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut response = String::new();
        s.read_to_string(&mut response).unwrap();
        let status = response.lines().next().unwrap_or_default().to_string();
        let payload = response.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("");
        let json = serde::parse_value(payload)
            .unwrap_or_else(|e| panic!("{method} {path}: invalid JSON ({e}): {payload}"));
        (status, json)
    };

    // One search bracketed by two adjacent frames = one known window.
    request("POST", "/debug/timeseries/tick", "");
    col.search("v", &[1.0, 0.0, 0.0, 0.0], &SearchParams::top_k(3)).unwrap();
    request("POST", "/debug/timeseries/tick", "");

    let (status, ts) = request("GET", "/debug/timeseries", "");
    assert!(status.contains("200"), "{status}");
    assert!(ts["windows"].as_f64().unwrap_or(0.0) >= 2.0, "{ts:?}");
    let delta = ts["counters"]
        .as_array()
        .and_then(|arr| {
            arr.iter().find(|c| {
                c["name"].as_str() == Some("milvus_query_total")
                    && c["collection"].as_str() == Some(name)
            })
        })
        .and_then(|c| c["window_delta"].as_f64());
    assert_eq!(delta, Some(1.0), "{ts:?}");

    let (status, profile) = request("GET", "/debug/profile", "");
    assert!(status.contains("200"), "{status}");
    let staged = profile["ops"].as_array().is_some_and(|arr| {
        arr.iter().any(|o| {
            o["collection"].as_str() == Some(name)
                && o["stages"].as_array().is_some_and(|s| !s.is_empty())
        })
    });
    assert!(staged, "{profile:?}");

    let (status, health) = request("GET", "/health", "");
    assert!(status.contains("200"), "{status}");
    assert!(health["status"].as_str().is_some(), "{health:?}");
    assert_eq!(health["components"].as_array().map(|c| c.len()), Some(5), "{health:?}");

    server.shutdown();
}

#[test]
fn distributed_paths_record_reader_and_writer_metrics() {
    use milvus_distributed::coordinator::Coordinator;
    use milvus_distributed::reader::ReaderNode;
    use milvus_distributed::writer::WriterNode;
    use milvus_storage::object_store::{MemoryStore, ObjectStore};
    use milvus_storage::LsmConfig;
    use std::sync::Arc;

    let before = milvus_obs::registry().snapshot();

    let coordinator = Coordinator::new(2);
    let store: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
    let writer = WriterNode::with_log_shipping(
        Schema::single("v", 4, Metric::L2),
        LsmConfig { auto_merge: false, ..Default::default() },
        Arc::clone(&store),
        Arc::clone(&coordinator),
    )
    .unwrap();
    let reader =
        ReaderNode::register(Schema::single("v", 4, Metric::L2), coordinator, store, 64 << 20);

    writer.insert(batch(0..100, 4)).unwrap();
    writer.flush().unwrap();
    reader.refresh().unwrap();
    reader.search("v", &[3.0, 0.0, 0.0, 0.0], &SearchParams::top_k(1)).unwrap();

    let after = milvus_obs::registry().snapshot();
    assert!(after.counter(obs::INGEST_ROWS, "writer") - before.counter(obs::INGEST_ROWS, "writer") >= 100);
    assert!(after.counter(obs::READER_REFRESHES, "reader") > before.counter(obs::READER_REFRESHES, "reader"));
    assert!(after.counter(obs::QUERY_TOTAL, "reader") > before.counter(obs::QUERY_TOTAL, "reader"));
    assert!(after.counter(obs::LOG_SHIP_RECORDS, "shared") > before.counter(obs::LOG_SHIP_RECORDS, "shared"));
}

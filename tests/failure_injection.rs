//! Failure injection: storage faults must surface as errors, never corrupt
//! state or panic.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use milvus_index::{Metric, VectorSet};
use milvus_storage::object_store::{MemoryStore, ObjectStore};
use milvus_storage::{InsertBatch, LsmConfig, LsmEngine, Result as StorageResult, Schema, StorageError};

/// A store whose writes/reads can be switched to fail.
struct FaultyStore {
    inner: MemoryStore,
    fail_puts: AtomicBool,
    fail_gets: AtomicBool,
    corrupt_gets: AtomicBool,
}

impl FaultyStore {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            inner: MemoryStore::new(),
            fail_puts: AtomicBool::new(false),
            fail_gets: AtomicBool::new(false),
            corrupt_gets: AtomicBool::new(false),
        })
    }
}

impl ObjectStore for FaultyStore {
    fn put(&self, key: &str, data: Bytes) -> StorageResult<()> {
        if self.fail_puts.load(Ordering::SeqCst) {
            return Err(StorageError::Io(std::io::Error::other("injected put failure")));
        }
        self.inner.put(key, data)
    }

    fn get(&self, key: &str) -> StorageResult<Bytes> {
        if self.fail_gets.load(Ordering::SeqCst) {
            return Err(StorageError::Io(std::io::Error::other("injected get failure")));
        }
        let data = self.inner.get(key)?;
        if self.corrupt_gets.load(Ordering::SeqCst) {
            // Truncate the blob: decoding must error, not panic.
            return Ok(data.slice(0..data.len().min(10)));
        }
        Ok(data)
    }

    fn delete(&self, key: &str) -> StorageResult<()> {
        self.inner.delete(key)
    }

    fn list(&self, prefix: &str) -> StorageResult<Vec<String>> {
        self.inner.list(prefix)
    }
}

fn schema() -> Schema {
    Schema::single("v", 2, Metric::L2)
}

fn batch(ids: std::ops::Range<i64>) -> InsertBatch {
    let id_vec: Vec<i64> = ids.collect();
    let mut vs = VectorSet::new(2);
    for &id in &id_vec {
        vs.push(&[id as f32, 0.0]);
    }
    InsertBatch::single(id_vec, vs)
}

#[test]
fn flush_error_propagates_and_engine_stays_usable() {
    let store = FaultyStore::new();
    let label = "fault_put";
    let engine = LsmEngine::new(
        schema(),
        LsmConfig { auto_merge: false, metrics_label: label.into(), ..Default::default() },
        store.clone() as Arc<dyn ObjectStore>,
        None,
    )
    .unwrap();

    let errors_before =
        milvus_obs::registry().snapshot().counter(milvus_obs::OBJECT_ERRORS, label);
    engine.insert(batch(0..10)).unwrap();
    store.fail_puts.store(true, Ordering::SeqCst);
    assert!(engine.flush().is_err(), "flush must report the injected put failure");

    // The injected fault must be visible in the metrics registry.
    let errors_after =
        milvus_obs::registry().snapshot().counter(milvus_obs::OBJECT_ERRORS, label);
    assert!(
        errors_after > errors_before,
        "injected put failure must increment {} (before={errors_before}, after={errors_after})",
        milvus_obs::OBJECT_ERRORS
    );

    // Recovery: the fault clears, a later flush succeeds with all data.
    store.fail_puts.store(false, Ordering::SeqCst);
    engine.insert(batch(10..20)).unwrap();
    engine.flush().unwrap();
    assert!(engine.snapshot().live_rows() >= 10);
}

#[test]
fn injected_get_failure_increments_error_counter_and_search_survives() {
    use milvus_core::{CollectionConfig, Milvus};
    use milvus_index::traits::SearchParams;

    let store = FaultyStore::new();
    let m = Milvus::with_store(store.clone() as Arc<dyn ObjectStore>);
    let name = "fault_get_search";
    let col = m
        .create_collection(name, schema(), CollectionConfig::for_tests())
        .unwrap();
    col.insert(batch(0..50)).unwrap();
    col.flush().unwrap();

    // Recovery attempt against a failing store: the read error must be
    // counted under the engine's collection label.
    let wal_dir =
        std::env::temp_dir().join(format!("milvus-fault-metrics-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    std::fs::create_dir_all(&wal_dir).unwrap();
    let wal = wal_dir.join("wal.log");
    {
        let eng = LsmEngine::new(
            schema(),
            LsmConfig { auto_merge: false, metrics_label: "fault_get".into(), ..Default::default() },
            store.clone() as Arc<dyn ObjectStore>,
            Some(&wal),
        )
        .unwrap();
        eng.insert(batch(100..110)).unwrap();
        eng.flush().unwrap();
    }
    let before =
        milvus_obs::registry().snapshot().counter(milvus_obs::OBJECT_ERRORS, "fault_get");
    store.fail_gets.store(true, Ordering::SeqCst);
    assert!(LsmEngine::recover(
        schema(),
        LsmConfig { auto_merge: false, metrics_label: "fault_get".into(), ..Default::default() },
        store.clone() as Arc<dyn ObjectStore>,
        &wal,
    )
    .is_err());
    let after =
        milvus_obs::registry().snapshot().counter(milvus_obs::OBJECT_ERRORS, "fault_get");
    assert!(
        after > before,
        "injected get failure must increment {}",
        milvus_obs::OBJECT_ERRORS
    );

    // While the store is still failing, the already-open collection keeps
    // serving searches from its in-memory snapshot — no panic, no error.
    let queries_before = milvus_obs::registry().snapshot().counter(milvus_obs::QUERY_TOTAL, name);
    let hits = col.search("v", &[7.0, 0.0], &SearchParams::top_k(3)).unwrap();
    assert_eq!(hits[0].id, 7);
    let queries_after = milvus_obs::registry().snapshot().counter(milvus_obs::QUERY_TOTAL, name);
    assert_eq!(queries_after, queries_before + 1, "post-fault search must still be counted");

    store.fail_gets.store(false, Ordering::SeqCst);
    std::fs::remove_dir_all(&wal_dir).unwrap();
}

#[test]
fn recover_surfaces_read_failures() {
    let dir = std::env::temp_dir().join(format!("milvus-fault-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let wal = dir.join("wal.log");

    let store = FaultyStore::new();
    {
        let engine = LsmEngine::new(
            schema(),
            LsmConfig { auto_merge: false, ..Default::default() },
            store.clone() as Arc<dyn ObjectStore>,
            Some(&wal),
        )
        .unwrap();
        engine.insert(batch(0..10)).unwrap();
        engine.flush().unwrap();
    }

    // I/O failure during recovery → error, not a half-recovered engine.
    store.fail_gets.store(true, Ordering::SeqCst);
    assert!(LsmEngine::recover(
        schema(),
        LsmConfig { auto_merge: false, ..Default::default() },
        store.clone() as Arc<dyn ObjectStore>,
        &wal,
    )
    .is_err());

    // Corrupt blob during recovery → decode error, not a panic.
    store.fail_gets.store(false, Ordering::SeqCst);
    store.corrupt_gets.store(true, Ordering::SeqCst);
    let r = LsmEngine::recover(
        schema(),
        LsmConfig { auto_merge: false, ..Default::default() },
        store.clone() as Arc<dyn ObjectStore>,
        &wal,
    );
    assert!(matches!(r, Err(StorageError::Corrupt(_))));

    // Clean store → full recovery.
    store.corrupt_gets.store(false, Ordering::SeqCst);
    let engine = LsmEngine::recover(
        schema(),
        LsmConfig { auto_merge: false, ..Default::default() },
        store as Arc<dyn ObjectStore>,
        &wal,
    )
    .unwrap();
    assert_eq!(engine.snapshot().live_rows(), 10);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_wal_line_is_an_error_not_a_panic() {
    let dir = std::env::temp_dir().join(format!("milvus-walcorrupt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let wal_path = dir.join("wal.log");
    {
        let mut wal = milvus_storage::wal::Wal::open(&wal_path).unwrap();
        wal.append_insert(batch(0..2)).unwrap();
    }
    // Append garbage (torn write).
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new().append(true).open(&wal_path).unwrap();
    writeln!(f, "{{this is not json").unwrap();
    drop(f);
    assert!(milvus_storage::wal::Wal::replay(&wal_path).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn reader_refresh_failure_keeps_previous_view() {
    use milvus_distributed::coordinator::Coordinator;
    use milvus_distributed::reader::ReaderNode;
    use milvus_distributed::writer::WriterNode;
    use milvus_index::traits::SearchParams;

    let coordinator = Coordinator::new(2);
    let store = FaultyStore::new();
    let writer = WriterNode::new(
        schema(),
        LsmConfig { auto_merge: false, ..Default::default() },
        store.clone() as Arc<dyn ObjectStore>,
        Arc::clone(&coordinator),
    )
    .unwrap();
    let reader = ReaderNode::register(
        schema(),
        coordinator,
        store.clone() as Arc<dyn ObjectStore>,
        64 << 20,
    );

    writer.insert(batch(0..20)).unwrap();
    writer.flush().unwrap();
    reader.refresh().unwrap();
    let before = reader.search("v", &[5.0, 0.0], &SearchParams::top_k(3)).unwrap();

    // Shared storage becomes unreachable: refresh errors, but the reader
    // keeps serving its last-known view (stateless cache semantics).
    store.fail_gets.store(true, Ordering::SeqCst);
    writer.insert(batch(20..40)).unwrap();
    writer.flush().unwrap();
    assert!(reader.refresh().is_err());
    let still = reader.search("v", &[5.0, 0.0], &SearchParams::top_k(3)).unwrap();
    assert_eq!(before, still);

    // Connectivity returns: the reader catches up.
    store.fail_gets.store(false, Ordering::SeqCst);
    reader.refresh().unwrap();
    let after = reader.search("v", &[25.0, 0.0], &SearchParams::top_k(1)).unwrap();
    assert_eq!(after[0].id, 25);
}

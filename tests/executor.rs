//! Integration tests for the work-stealing executor on the query path:
//! parallel segment fan-out actually overlaps per-segment waits, the pooled
//! paths return results bit-identical to a serial reference, and the
//! executor's metric families are exported.
//!
//! Scan-delay injection is process-global (keyed by segment id), so every
//! test that arms it serializes on [`guard`] and disarms via a drop guard.

use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use milvus_core::{CollectionConfig, Milvus};
use milvus_index::traits::SearchParams;
use milvus_index::{Metric, VectorSet};
use milvus_obs as obs;
use milvus_storage::segment::merge_segment_results;
use milvus_storage::{InsertBatch, Schema};

fn guard() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

/// Disarms all scan delays even if the test panics.
struct DelayGuard;

impl Drop for DelayGuard {
    fn drop(&mut self) {
        milvus_storage::clear_scan_delays();
    }
}

fn batch(ids: std::ops::Range<i64>, dim: usize) -> InsertBatch {
    let mut vs = VectorSet::new(dim);
    for id in ids.clone() {
        let v: Vec<f32> = (0..dim).map(|d| ((id * 31 + d as i64) as f32 * 0.11).sin()).collect();
        vs.push(&v);
    }
    InsertBatch::single(ids.collect(), vs)
}

fn segmented_collection(
    m: &Milvus,
    name: &str,
    segments: usize,
    rows_per_segment: i64,
) -> Arc<milvus_core::Collection> {
    let col = m
        .create_collection(name, Schema::single("v", 8, Metric::L2), CollectionConfig::for_tests())
        .unwrap();
    for s in 0..segments as i64 {
        col.insert(batch(s * rows_per_segment..(s + 1) * rows_per_segment, 8)).unwrap();
        col.flush().unwrap();
    }
    assert_eq!(col.stats().segments, segments);
    col
}

/// The tentpole latency claim, asserted without timing-flaky thresholds on
/// real work: each of 4 segments gets a 50 ms injected scan-delay *floor*
/// (a sleep, so it needs no CPU to elapse). A serial scan cannot finish in
/// under 200 ms; the pooled fan-out overlaps the four sleeps and must come
/// in well under that.
#[test]
fn parallel_segment_fanout_overlaps_scan_delays() {
    let _g = guard();
    let _cleanup = DelayGuard;
    let m = Milvus::new();
    let col = segmented_collection(&m, "exec_fanout", 4, 100);

    let query: Vec<f32> = (0..8).map(|d| (d as f32 * 0.3).cos()).collect();
    let params = SearchParams::top_k(5);
    let baseline = col.search("v", &query, &params).unwrap();

    for seg in &col.snapshot().segments {
        milvus_storage::inject_scan_delay(seg.id, Duration::from_millis(50));
    }
    let tasks_before = obs::counter(obs::EXEC_TASKS, "global").get();
    let start = Instant::now();
    let delayed = col.search("v", &query, &params).unwrap();
    let elapsed = start.elapsed();

    assert_eq!(delayed, baseline, "delays must not change results");
    assert!(
        elapsed >= Duration::from_millis(50),
        "the injected floor must apply at all (took {elapsed:?})"
    );
    assert!(
        elapsed < Duration::from_millis(200),
        "4 x 50 ms segment scans ran serially (took {elapsed:?})"
    );
    let tasks_after = obs::counter(obs::EXEC_TASKS, "global").get();
    assert!(
        tasks_after >= tasks_before + 4,
        "segment fan-out must schedule one pool task per segment \
         ({tasks_before} -> {tasks_after})"
    );
}

/// The pooled fan-out must return exactly what the serial per-segment loop
/// returned: same hits, same scores, same order.
#[test]
fn parallel_search_is_bit_identical_to_serial_reference() {
    let _g = guard();
    let m = Milvus::new();
    let col = segmented_collection(&m, "exec_identical", 5, 123);
    let schema = Schema::single("v", 8, Metric::L2);
    let params = SearchParams::top_k(17);

    for qi in 0..10i64 {
        let query: Vec<f32> = (0..8).map(|d| ((qi * 7 + d) as f32 * 0.17).sin()).collect();
        // Serial reference: scan segments in snapshot order, merge once.
        let snap = col.snapshot();
        let lists: Vec<_> = snap
            .segments
            .iter()
            .map(|seg| {
                seg.search_field_stats(&schema, "v", &query, &params, None).unwrap().0
            })
            .collect();
        let expected = merge_segment_results(&lists, params.k);

        let got = col.search("v", &query, &params).unwrap();
        assert_eq!(got.len(), expected.len());
        for (hit, exp) in got.iter().zip(&expected) {
            assert_eq!(hit.id, exp.id, "id order diverged for query {qi}");
            assert_eq!(
                hit.distance.to_bits(),
                exp.dist.to_bits(),
                "distance diverged for query {qi}"
            );
        }
    }
}

/// `search_batch` fans queries out across the pool; each query must still
/// return exactly what a lone `search` returns.
#[test]
fn search_batch_matches_individual_searches() {
    let _g = guard();
    let m = Milvus::new();
    let col = segmented_collection(&m, "exec_batch", 3, 80);
    let params = SearchParams::top_k(9);

    let mut queries = VectorSet::new(8);
    for qi in 0..13i64 {
        let q: Vec<f32> = (0..8).map(|d| ((qi * 5 + d) as f32 * 0.23).cos()).collect();
        queries.push(&q);
    }
    let batched = col.search_batch("v", &queries, &params).unwrap();
    assert_eq!(batched.len(), queries.len());
    for (i, batch_hits) in batched.iter().enumerate() {
        let single = col.search("v", queries.get(i), &params).unwrap();
        assert_eq!(*batch_hits, single, "batched result diverged for query {i}");
    }
}

/// Filtered search fans out per segment too and must keep its results.
#[test]
fn filtered_search_survives_the_fanout() {
    let _g = guard();
    let m = Milvus::new();
    let col = m
        .create_collection(
            "exec_filtered",
            Schema::single("v", 8, Metric::L2).with_attribute("price"),
            CollectionConfig::for_tests(),
        )
        .unwrap();
    for s in 0..3i64 {
        let ids: Vec<i64> = (s * 100..(s + 1) * 100).collect();
        let mut vs = VectorSet::new(8);
        let mut attrs = Vec::new();
        for &id in &ids {
            let v: Vec<f32> = (0..8).map(|d| ((id + d) as f32 * 0.19).sin()).collect();
            vs.push(&v);
            attrs.push((id % 50) as f64);
        }
        col.insert(InsertBatch { ids, vectors: vec![vs], attributes: vec![attrs] }).unwrap();
        col.flush().unwrap();
    }
    let query: Vec<f32> = (0..8).map(|d| (d as f32 * 0.41).sin()).collect();
    let hits = col
        .filtered_search("v", &query, "price", 10.0, 20.0, &SearchParams::top_k(10))
        .unwrap();
    assert!(!hits.is_empty());
    for hit in &hits {
        assert!((10.0..=20.0).contains(&((hit.id % 50) as f64)), "hit {} fails filter", hit.id);
    }
}

/// The executor's metric families answer on the registry after query-path
/// use (the REST smoke test asserts the rendered families; this pins the
/// counters themselves).
#[test]
fn executor_metrics_are_registered_and_move() {
    let _g = guard();
    let m = Milvus::new();
    let col = segmented_collection(&m, "exec_metrics", 4, 60);
    let before = obs::counter(obs::EXEC_TASKS, "global").get();
    col.search("v", &[0.5; 8], &SearchParams::top_k(3)).unwrap();
    assert!(obs::counter(obs::EXEC_TASKS, "global").get() > before);
    // Gauges exist and are sane: queue drains back to empty at idle.
    assert!(obs::gauge(obs::EXEC_WORKERS, "global").get() >= 4);
    assert_eq!(obs::gauge(obs::EXEC_QUEUE_DEPTH, "global").get(), 0);
}

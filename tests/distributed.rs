//! Distributed-system integration (§5.3): cluster results must equal a
//! single-node reference; elasticity and crash recovery must preserve them.

use std::sync::Arc;

use milvus_datagen as datagen;
use milvus_distributed::Cluster;
use milvus_index::traits::SearchParams;
use milvus_index::{Metric, TopK};
use milvus_storage::object_store::MemoryStore;
use milvus_storage::{InsertBatch, LsmConfig, Schema};

fn cluster(shards: usize, readers: usize) -> Cluster {
    Cluster::new(
        Schema::single("v", 32, Metric::L2),
        shards,
        readers,
        Arc::new(MemoryStore::new()),
        LsmConfig { auto_merge: false, ..Default::default() },
    )
    .unwrap()
}

#[test]
fn cluster_matches_single_node_reference_exactly() {
    let n = 2_000;
    let data = datagen::clustered(n, 32, 16, -1.0, 1.0, 0.2, 81);
    let c = cluster(8, 3);
    c.insert(InsertBatch::single((0..n as i64).collect(), data.clone())).unwrap();
    c.flush().unwrap();

    let queries = datagen::queries_from(&data, 10, 0.05, 82);
    for qi in 0..queries.len() {
        let q = queries.get(qi);
        // Reference: brute force over all data.
        let mut heap = TopK::new(10);
        for (row, v) in data.iter().enumerate() {
            heap.push(row as i64, milvus_index::distance::l2_sq(q, v));
        }
        let expect: Vec<i64> = heap.into_sorted().iter().map(|x| x.id).collect();
        let got: Vec<i64> = c
            .search("v", q, &SearchParams::top_k(10))
            .unwrap()
            .iter()
            .map(|x| x.id)
            .collect();
        assert_eq!(got, expect, "query {qi}");
    }
}

#[test]
fn results_stable_across_membership_changes() {
    let n = 1_000;
    let data = datagen::clustered(n, 32, 8, -1.0, 1.0, 0.2, 83);
    let c = cluster(12, 2);
    c.insert(InsertBatch::single((0..n as i64).collect(), data.clone())).unwrap();
    c.flush().unwrap();

    let q = data.get(500).to_vec();
    let sp = SearchParams::top_k(5);
    let reference = c.search("v", &q, &sp).unwrap();

    // Scale up twice, crash two different readers, scale up again.
    c.add_reader().unwrap();
    assert_eq!(c.search("v", &q, &sp).unwrap(), reference);
    c.add_reader().unwrap();
    assert_eq!(c.search("v", &q, &sp).unwrap(), reference);
    let victims: Vec<u64> = c.readers().iter().take(2).map(|r| r.id).collect();
    for v in victims {
        assert!(c.crash_reader(v));
        assert_eq!(c.search("v", &q, &sp).unwrap(), reference, "after crash of {v}");
    }
    c.add_reader().unwrap();
    assert_eq!(c.search("v", &q, &sp).unwrap(), reference);
}

#[test]
fn writes_after_crash_still_propagate() {
    let c = cluster(4, 2);
    let data = datagen::clustered(200, 32, 4, -1.0, 1.0, 0.2, 84);
    c.insert(InsertBatch::single((0..200).collect(), data.clone())).unwrap();
    c.flush().unwrap();

    let victim = c.readers()[0].id;
    c.crash_reader(victim);

    // New writes land and are served by the remaining/replacement readers.
    let fresh = datagen::clustered(50, 32, 4, 5.0, 7.0, 0.1, 85);
    c.insert(InsertBatch::single((200..250).collect(), fresh.clone())).unwrap();
    c.flush().unwrap();
    c.add_reader().unwrap();

    let hit = c.search("v", fresh.get(10), &SearchParams::top_k(1)).unwrap();
    assert_eq!(hit[0].id, 210);
    assert_eq!(c.live_rows(), 250);
}

#[test]
fn deletes_and_updates_cluster_wide() {
    let c = cluster(6, 2);
    let data = datagen::clustered(300, 32, 4, -1.0, 1.0, 0.2, 86);
    c.insert(InsertBatch::single((0..300).collect(), data.clone())).unwrap();
    c.flush().unwrap();

    // Delete then re-insert id 42 with a distinctive vector (an update).
    c.delete(&[42]).unwrap();
    let mut vs = milvus_index::VectorSet::new(32);
    vs.push(&[9.0; 32]);
    c.insert(InsertBatch::single(vec![42], vs)).unwrap();
    c.flush().unwrap();

    let hit = c.search("v", &[9.0; 32], &SearchParams::top_k(1)).unwrap();
    assert_eq!(hit[0].id, 42);
    assert!(hit[0].dist < 1e-3);
    assert_eq!(c.live_rows(), 300);
}

#[test]
fn readers_receive_persisted_indexes() {
    use milvus_index::registry::IndexRegistry;
    use milvus_index::traits::BuildParams;

    let c = cluster(4, 2);
    let data = datagen::clustered(800, 32, 8, -1.0, 1.0, 0.2, 89);
    c.insert(InsertBatch::single((0..800).collect(), data.clone())).unwrap();
    c.flush().unwrap();

    // Writer builds IVF indexes; they ship inside the segment blobs.
    let registry = IndexRegistry::with_builtins();
    let params = BuildParams { nlist: 8, kmeans_iters: 4, ..Default::default() };
    let built = c.writer().build_indexes("v", "IVF_FLAT", &registry, &params).unwrap();
    assert!(built >= 4, "one per shard expected, got {built}");

    // Readers refresh and hold the deserialized indexes.
    for r in c.readers() {
        r.refresh().unwrap();
    }
    let sp = SearchParams { k: 3, nprobe: 8, ..Default::default() };
    let res = c.search("v", data.get(321), &sp).unwrap();
    assert_eq!(res[0].id, 321);
    // Every shard's segment arrived with its persisted index attached.
    let indexed: usize = c.readers().iter().map(|r| r.indexed_segments()).sum();
    assert_eq!(indexed, 4, "expected one indexed segment per shard");
}

#[test]
fn writer_failover_via_shipped_logs() {
    use milvus_distributed::coordinator::Coordinator;
    use milvus_distributed::writer::WriterNode;

    let schema = Schema::single("v", 32, Metric::L2);
    let cfg = LsmConfig { auto_merge: false, ..Default::default() };
    let shared: Arc<dyn milvus_storage::object_store::ObjectStore> =
        Arc::new(MemoryStore::new());
    let coordinator = Coordinator::new(4);
    let data = datagen::clustered(300, 32, 6, -1.0, 1.0, 0.2, 88);

    // Primary writer ships logs; some data flushed, some only in the log.
    {
        let writer = WriterNode::with_log_shipping(
            schema.clone(),
            cfg.clone(),
            Arc::clone(&shared),
            Arc::clone(&coordinator),
        )
        .unwrap();
        writer
            .insert(InsertBatch::single((0..200).collect(), data.gather(&(0..200).collect::<Vec<_>>())))
            .unwrap();
        writer.flush().unwrap();
        writer
            .insert(InsertBatch::single(
                (200..300).collect(),
                data.gather(&(200..300).collect::<Vec<_>>()),
            ))
            .unwrap();
        writer.delete(&[50]).unwrap();
        // Crash: rows 200..300 and delete(50) exist only in the shipped log.
    }

    // Standby takes over from shared state alone (the writer is stateless).
    let standby = WriterNode::standby_takeover(
        schema,
        cfg,
        Arc::clone(&shared),
        Arc::clone(&coordinator),
    )
    .unwrap();
    assert_eq!(standby.live_rows(), 299); // 300 - delete(50)

    // The recovered writer keeps serving writes, and checkpointed records
    // can be truncated from the shared log.
    standby.delete(&[299]).unwrap();
    standby.flush().unwrap();
    assert_eq!(standby.live_rows(), 298);
    assert!(standby.truncate_shared_log().unwrap() > 0);

    // A second takeover from the truncated log still converges.
    let third = WriterNode::standby_takeover(
        Schema::single("v", 32, Metric::L2),
        LsmConfig { auto_merge: false, ..Default::default() },
        shared,
        coordinator,
    )
    .unwrap();
    assert_eq!(third.live_rows(), 298);
}

#[test]
fn empty_cluster_and_no_readers_edge_cases() {
    let c = cluster(4, 1);
    // Search before any data: empty results, no panic.
    assert!(c.search("v", &[0.0; 32], &SearchParams::top_k(3)).unwrap().is_empty());
    // Crash the only reader: searches return empty (no coverage) but the
    // system stays alive and a replacement restores service.
    let only = c.readers()[0].id;
    c.crash_reader(only);
    assert_eq!(c.reader_count(), 0);
    assert!(c.search("v", &[0.0; 32], &SearchParams::top_k(3)).unwrap().is_empty());
    c.add_reader().unwrap();
    let data = datagen::clustered(50, 32, 2, -1.0, 1.0, 0.1, 87);
    c.insert(InsertBatch::single((0..50).collect(), data.clone())).unwrap();
    c.flush().unwrap();
    assert_eq!(c.search("v", data.get(0), &SearchParams::top_k(1)).unwrap()[0].id, 0);
}

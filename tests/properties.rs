//! Property-based tests on the core data structures and invariants the
//! system depends on.
//!
//! Each property runs many randomized cases driven by a seeded [`StdRng`], so
//! failures are reproducible: the panic message names the failing case's seed
//! and the case can be replayed by seeding the RNG with it directly.

use std::collections::HashSet;

use milvus_index::binary::{pack_bits, unpack_bits};
use milvus_index::topk::{Neighbor, TopK};
use milvus_index::{distance, Metric, SimdLevel, VectorIndex, VectorSet};
use milvus_storage::attribute::AttributeColumn;
use milvus_storage::codec::{decode_segment, encode_segment};
use milvus_storage::entity::{InsertBatch, Schema};
use milvus_storage::merge::{MergePolicy, SegmentMeta};
use milvus_storage::segment::Segment;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Run `f` once per case with a per-case RNG derived from a fixed base seed.
fn cases(n: u64, mut f: impl FnMut(&mut StdRng)) {
    for case in 0..n {
        let seed = 0xC0FFEE ^ case;
        let mut rng = StdRng::seed_from_u64(seed);
        // Let the property panic with enough context to replay this case.
        eprintln_on_panic(seed, || f(&mut rng));
    }
}

fn eprintln_on_panic(seed: u64, f: impl FnOnce()) {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    if let Err(payload) = result {
        eprintln!("property failed for case seed {seed:#x}");
        std::panic::resume_unwind(payload);
    }
}

/// TopK must agree with sorting the whole input and truncating to k.
#[test]
fn topk_equals_sort_and_truncate() {
    cases(64, |rng| {
        let n = rng.gen_range(1..200);
        let k = rng.gen_range(1..20usize);
        let entries: Vec<(i64, f32)> = (0..n)
            .map(|_| (rng.gen_range(0i64..1000), rng.gen_range(-1e6f32..1e6)))
            .collect();

        let mut heap = TopK::new(k);
        for &(id, d) in &entries {
            heap.push(id, d);
        }
        let got = heap.into_sorted();

        let mut expect: Vec<Neighbor> =
            entries.iter().map(|&(id, d)| Neighbor::new(id, d)).collect();
        expect.sort_unstable();
        expect.truncate(k);
        assert_eq!(got, expect);
    });
}

/// All supported SIMD levels agree with the scalar kernel within 1e-4
/// relative error, across dimensions that exercise full lanes, remainders
/// and the sub-lane case.
#[test]
fn simd_levels_match_scalar_across_dims() {
    const DIMS: &[usize] = &[1, 7, 8, 64, 100, 128];
    cases(32, |rng| {
        for &dim in DIMS {
            let a: Vec<f32> = (0..dim).map(|_| rng.gen_range(-100.0f32..100.0)).collect();
            let b: Vec<f32> = (0..dim).map(|_| rng.gen_range(-100.0f32..100.0)).collect();
            let ref_l2 = distance::l2_sq_with_level(&a, &b, SimdLevel::Scalar);
            let ref_ip = distance::ip_with_level(&a, &b, SimdLevel::Scalar);
            for level in SimdLevel::ALL {
                if !level.supported() {
                    continue;
                }
                let l2 = distance::l2_sq_with_level(&a, &b, level);
                let ip = distance::ip_with_level(&a, &b, level);
                let tol = 1e-4 * (1.0 + ref_l2.abs());
                assert!(
                    (l2 - ref_l2).abs() <= tol,
                    "dim {dim} level {level}: l2 {l2} vs scalar {ref_l2}"
                );
                let tol = 1e-4 * (1.0 + ref_ip.abs());
                assert!(
                    (ip - ref_ip).abs() <= tol,
                    "dim {dim} level {level}: ip {ip} vs scalar {ref_ip}"
                );
            }
        }
    });
}

/// Triangle-ish sanity: L2²(a,a)=0, symmetry, non-negativity.
#[test]
fn l2_metric_axioms() {
    cases(64, |rng| {
        let dim = rng.gen_range(1..64);
        let a: Vec<f32> = (0..dim).map(|_| rng.gen_range(-50.0f32..50.0)).collect();
        let b: Vec<f32> = a.iter().rev().copied().collect();
        assert!(distance::l2_sq(&a, &a) <= 1e-3);
        assert!(distance::l2_sq(&a, &b) >= 0.0);
        let ab = distance::l2_sq(&a, &b);
        let ba = distance::l2_sq(&b, &a);
        assert!((ab - ba).abs() <= 1e-3 * (1.0 + ab.abs()));
    });
}

/// Bit packing roundtrips for arbitrary bit patterns.
#[test]
fn bits_roundtrip() {
    cases(64, |rng| {
        let n = rng.gen_range(0..300);
        let bits: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
        let packed = pack_bits(&bits);
        assert_eq!(unpack_bits(&packed, bits.len()), bits);
    });
}

/// Attribute range queries agree with a naive filter for arbitrary data.
#[test]
fn attribute_range_equals_naive() {
    cases(64, |rng| {
        let n = rng.gen_range(0..300);
        let values: Vec<f64> = (0..n).map(|_| rng.gen_range(-1000.0f64..1000.0)).collect();
        let lo = rng.gen_range(-1200.0f64..1200.0);
        let hi = lo + rng.gen_range(0.0f64..500.0);
        let rows: Vec<i64> = (0..values.len() as i64).collect();
        let col = AttributeColumn::build("p", &values, &rows);
        let mut got = col.range_rows(lo, hi);
        got.sort_unstable();
        let expect: Vec<i64> = values
            .iter()
            .enumerate()
            .filter(|(_, &v)| v >= lo && v <= hi)
            .map(|(i, _)| i as i64)
            .collect();
        let expect_len = expect.len();
        assert_eq!(got, expect);
        assert_eq!(col.count_range(lo, hi), expect_len);
    });
}

/// Segment codec roundtrips arbitrary segments (ids, vectors, attributes,
/// tombstones).
#[test]
fn segment_codec_roundtrip() {
    cases(64, |rng| {
        let n = rng.gen_range(1..40usize);
        let dim = rng.gen_range(1..8usize);
        let dels: Vec<i64> =
            (0..rng.gen_range(0..10)).map(|_| rng.gen_range(0i64..40)).collect();
        let schema = Schema::single("v", dim, Metric::L2).with_attribute("a");
        let ids: Vec<i64> = (0..n as i64).collect();
        let flat: Vec<f32> = (0..n * dim).map(|i| (i as f32 * 0.37).sin() * 100.0).collect();
        let batch = InsertBatch {
            ids: ids.clone(),
            vectors: vec![VectorSet::from_flat(dim, flat)],
            attributes: vec![(0..n).map(|i| i as f64 * 1.5).collect()],
        };
        let seg = Segment::from_batch(9, &schema, &batch).unwrap().with_deletes(dels);
        let decoded = decode_segment(seg.id, seg.version, &encode_segment(&seg)).unwrap();
        assert_eq!(&decoded.data().row_ids, &seg.data().row_ids);
        assert_eq!(decoded.data().vectors[0].as_flat(), seg.data().vectors[0].as_flat());
        assert_eq!(decoded.deleted(), seg.deleted());
    });
}

/// Merge plans never contain duplicates, never exceed the size cap, and only
/// reference existing segments.
#[test]
fn merge_plans_are_well_formed() {
    cases(64, |rng| {
        let n = rng.gen_range(0..30);
        let sizes: Vec<usize> = (0..n).map(|_| rng.gen_range(1..2_000_000)).collect();
        let metas: Vec<SegmentMeta> = sizes
            .iter()
            .enumerate()
            .map(|(i, &bytes)| SegmentMeta { id: i as u64, bytes })
            .collect();
        let policy = MergePolicy {
            tier_factor: 10.0,
            min_segments_per_merge: 2,
            max_segment_bytes: 1_000_000,
        };
        let plans = policy.plan(&metas);
        let mut seen = HashSet::new();
        for plan in &plans {
            assert!(plan.len() >= 2);
            let mut total = 0usize;
            for id in plan {
                assert!(seen.insert(*id), "segment {} in two plans", id);
                let meta = metas.iter().find(|m| m.id == *id).expect("exists");
                assert!(meta.bytes < policy.max_segment_bytes);
                total += meta.bytes;
            }
            assert!(total <= policy.max_segment_bytes);
        }
    });
}

/// Flat-index search results are sorted, unique and of the right length for
/// arbitrary data.
#[test]
fn flat_search_invariants() {
    cases(64, |rng| {
        let n = rng.gen_range(1..60);
        let k = rng.gen_range(1..20usize);
        let seed = rng.gen_range(0u64..1000);
        let data = milvus_datagen::clustered(n, 4, 2, -10.0, 10.0, 1.0, seed);
        let ids: Vec<i64> = (0..n as i64).collect();
        let flat = milvus_index::flat::FlatIndex::build(Metric::L2, data.clone(), ids).unwrap();
        let res = flat
            .search(data.get(0), &milvus_index::traits::SearchParams::top_k(k))
            .unwrap();
        assert_eq!(res.len(), k.min(n));
        for w in res.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
        let mut unique: Vec<i64> = res.iter().map(|r| r.id).collect();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), res.len());
    });
}

/// Consistent hashing: every key owned, ownership stable under re-asks.
#[test]
fn hashring_total_and_stable() {
    cases(64, |rng| {
        let node_count = rng.gen_range(1..8);
        let nodes: Vec<u64> = (0..node_count).map(|_| rng.gen_range(0u64..50)).collect();
        let keys = rng.gen_range(1usize..100);
        let mut ring = milvus_distributed::HashRing::new(32);
        for &n in &nodes {
            ring.add_node(n);
        }
        let owners: Vec<u64> = (0..keys).map(|k| ring.node_for(&k).unwrap()).collect();
        for (k, &o) in owners.iter().enumerate() {
            assert!(nodes.contains(&o), "key {} owned by unknown node {}", k, o);
            // Determinism.
            assert_eq!(ring.node_for(&k), Some(o));
        }
    });
}

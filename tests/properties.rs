//! Property-based tests (proptest) on the core data structures and
//! invariants the system depends on.

use std::collections::HashSet;

use milvus_index::binary::{pack_bits, unpack_bits};
use milvus_index::topk::{Neighbor, TopK};
use milvus_index::{distance, Metric, SimdLevel, VectorIndex, VectorSet};
use milvus_storage::attribute::AttributeColumn;
use milvus_storage::codec::{decode_segment, encode_segment};
use milvus_storage::entity::{InsertBatch, Schema};
use milvus_storage::merge::{MergePolicy, SegmentMeta};
use milvus_storage::segment::Segment;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// TopK must agree with sorting the whole input.
    #[test]
    fn topk_equals_sort(entries in prop::collection::vec((0i64..1000, -1e6f32..1e6), 1..200), k in 1usize..20) {
        let mut heap = TopK::new(k);
        for &(id, d) in &entries {
            heap.push(id, d);
        }
        let got = heap.into_sorted();

        let mut expect: Vec<Neighbor> =
            entries.iter().map(|&(id, d)| Neighbor::new(id, d)).collect();
        expect.sort_unstable();
        expect.truncate(k);
        prop_assert_eq!(got, expect);
    }

    /// All SIMD levels agree with the scalar kernel on arbitrary input.
    #[test]
    fn simd_levels_agree(a in prop::collection::vec(-100.0f32..100.0, 1..200)) {
        let b: Vec<f32> = a.iter().map(|x| x * 0.5 + 1.0).collect();
        let ref_l2 = distance::l2_sq_with_level(&a, &b, SimdLevel::Scalar);
        let ref_ip = distance::ip_with_level(&a, &b, SimdLevel::Scalar);
        for level in SimdLevel::ALL {
            if level.supported() {
                let l2 = distance::l2_sq_with_level(&a, &b, level);
                let ip = distance::ip_with_level(&a, &b, level);
                let tol = 1e-3 * (1.0 + ref_l2.abs());
                prop_assert!((l2 - ref_l2).abs() <= tol, "{} l2 {} vs {}", level, l2, ref_l2);
                let tol = 1e-3 * (1.0 + ref_ip.abs());
                prop_assert!((ip - ref_ip).abs() <= tol, "{} ip {} vs {}", level, ip, ref_ip);
            }
        }
    }

    /// Triangle-ish sanity: L2²(a,a)=0, symmetry, non-negativity.
    #[test]
    fn l2_metric_axioms(a in prop::collection::vec(-50.0f32..50.0, 1..64)) {
        let b: Vec<f32> = a.iter().rev().copied().collect();
        prop_assert!(distance::l2_sq(&a, &a) <= 1e-3);
        prop_assert!(distance::l2_sq(&a, &b) >= 0.0);
        let ab = distance::l2_sq(&a, &b);
        let ba = distance::l2_sq(&b, &a);
        prop_assert!((ab - ba).abs() <= 1e-3 * (1.0 + ab.abs()));
    }

    /// Bit packing roundtrips for arbitrary bit patterns.
    #[test]
    fn bits_roundtrip(bits in prop::collection::vec(any::<bool>(), 0..300)) {
        let packed = pack_bits(&bits);
        prop_assert_eq!(unpack_bits(&packed, bits.len()), bits);
    }

    /// Attribute range queries agree with a naive filter for arbitrary data.
    #[test]
    fn attribute_range_equals_naive(
        values in prop::collection::vec(-1000.0f64..1000.0, 0..300),
        lo in -1200.0f64..1200.0,
        width in 0.0f64..500.0,
    ) {
        let hi = lo + width;
        let rows: Vec<i64> = (0..values.len() as i64).collect();
        let col = AttributeColumn::build("p", &values, &rows);
        let mut got = col.range_rows(lo, hi);
        got.sort_unstable();
        let mut expect: Vec<i64> = values
            .iter()
            .enumerate()
            .filter(|(_, &v)| v >= lo && v <= hi)
            .map(|(i, _)| i as i64)
            .collect();
        expect.sort_unstable();
        let expect_len = expect.len();
        prop_assert_eq!(got, expect);
        prop_assert_eq!(col.count_range(lo, hi), expect_len);
    }

    /// Segment codec roundtrips arbitrary segments (ids, vectors,
    /// attributes, tombstones).
    #[test]
    fn segment_codec_roundtrip(
        n in 1usize..40,
        dim in 1usize..8,
        dels in prop::collection::vec(0i64..40, 0..10),
    ) {
        let schema = Schema::single("v", dim, Metric::L2).with_attribute("a");
        let ids: Vec<i64> = (0..n as i64).collect();
        let flat: Vec<f32> = (0..n * dim).map(|i| (i as f32 * 0.37).sin() * 100.0).collect();
        let batch = InsertBatch {
            ids: ids.clone(),
            vectors: vec![VectorSet::from_flat(dim, flat)],
            attributes: vec![(0..n).map(|i| i as f64 * 1.5).collect()],
        };
        let seg = Segment::from_batch(9, &schema, &batch).unwrap().with_deletes(dels);
        let decoded = decode_segment(seg.id, seg.version, &encode_segment(&seg)).unwrap();
        prop_assert_eq!(&decoded.data().row_ids, &seg.data().row_ids);
        prop_assert_eq!(decoded.data().vectors[0].as_flat(), seg.data().vectors[0].as_flat());
        prop_assert_eq!(decoded.deleted(), seg.deleted());
    }

    /// Merge plans never contain duplicates, never exceed the size cap, and
    /// only reference existing segments.
    #[test]
    fn merge_plans_are_well_formed(sizes in prop::collection::vec(1usize..2_000_000, 0..30)) {
        let metas: Vec<SegmentMeta> = sizes
            .iter()
            .enumerate()
            .map(|(i, &bytes)| SegmentMeta { id: i as u64, bytes })
            .collect();
        let policy = MergePolicy {
            tier_factor: 10.0,
            min_segments_per_merge: 2,
            max_segment_bytes: 1_000_000,
        };
        let plans = policy.plan(&metas);
        let mut seen = HashSet::new();
        for plan in &plans {
            prop_assert!(plan.len() >= 2);
            let mut total = 0usize;
            for id in plan {
                prop_assert!(seen.insert(*id), "segment {} in two plans", id);
                let meta = metas.iter().find(|m| m.id == *id).expect("exists");
                prop_assert!(meta.bytes < policy.max_segment_bytes);
                total += meta.bytes;
            }
            prop_assert!(total <= policy.max_segment_bytes);
        }
    }

    /// Flat-index search results are sorted, unique and of the right length
    /// for arbitrary data.
    #[test]
    fn flat_search_invariants(
        n in 1usize..60,
        k in 1usize..20,
        seed in 0u64..1000,
    ) {
        let data = milvus_datagen::clustered(n, 4, 2, -10.0, 10.0, 1.0, seed);
        let ids: Vec<i64> = (0..n as i64).collect();
        let flat = milvus_index::flat::FlatIndex::build(Metric::L2, data.clone(), ids).unwrap();
        let res = flat
            .search(data.get(0), &milvus_index::traits::SearchParams::top_k(k))
            .unwrap();
        prop_assert_eq!(res.len(), k.min(n));
        for w in res.windows(2) {
            prop_assert!(w[0].dist <= w[1].dist);
        }
        let mut unique: Vec<i64> = res.iter().map(|r| r.id).collect();
        unique.sort_unstable();
        unique.dedup();
        prop_assert_eq!(unique.len(), res.len());
    }

    /// Consistent hashing: every key owned, ownership stable under re-adds.
    #[test]
    fn hashring_total_and_stable(nodes in prop::collection::vec(0u64..50, 1..8), keys in 1usize..100) {
        let mut ring = milvus_distributed::HashRing::new(32);
        for &n in &nodes {
            ring.add_node(n);
        }
        let owners: Vec<u64> = (0..keys).map(|k| ring.node_for(&k).unwrap()).collect();
        for (k, &o) in owners.iter().enumerate() {
            prop_assert!(nodes.contains(&o), "key {} owned by unknown node {}", k, o);
            // Determinism.
            prop_assert_eq!(ring.node_for(&k), Some(o));
        }
    }
}


//! Integration suite for the fused quantized-scan kernels (PR 8): the
//! prepared-query bucket scans must be bit-identical to the scalar fused
//! reference at every SIMD level the machine supports, PQ early-abandon must
//! return exactly the unpruned results, and the fused paths must keep the
//! recall the seed's decode-then-distance scans had.

use milvus_index::distance::quant::{sq8_kernels_at, PreparedSq8};
use milvus_index::ivf::{IvfIndex, IvfVariant};
use milvus_index::{BuildParams, Metric, SearchParams, SimdLevel, TopK, VectorIndex};

fn build(variant: IvfVariant, metric: Metric, n: usize, dim: usize) -> IvfIndex {
    let data = milvus_datagen::clustered(n, dim, 8, -1.0, 1.0, 0.15, 42);
    let ids: Vec<i64> = (0..n as i64).collect();
    let params = BuildParams { metric, nlist: 16, kmeans_iters: 6, pq_m: 8, ..Default::default() };
    IvfIndex::build(variant, &data, &ids, &params).unwrap()
}

/// Every supported SIMD level's fused SQ8 kernels agree bit-for-bit with the
/// scalar reference over real quantizer parameters and real encoded codes.
#[test]
fn fused_sq8_kernels_bit_identical_across_levels_on_real_codes() {
    let dim = 48;
    let index = build(IvfVariant::Sq8, Metric::L2, 400, dim);
    let (vmin, vstep) = index.sq_params().expect("sq8 index");
    let queries = milvus_datagen::clustered(4, dim, 8, -1.0, 1.0, 0.15, 7);
    // Find a non-empty bucket to pull genuine codes from.
    let bucket = (0..index.nlist()).find(|&b| index.bucket_len(b) >= 5).unwrap();
    let codes = index.bucket_codes(bucket).unwrap();
    for q in queries.iter() {
        let w: Vec<f32> = q.iter().zip(vstep).map(|(a, b)| a * b).collect();
        let r: Vec<f32> = q.iter().zip(vmin).map(|(a, b)| a - b).collect();
        for code in codes.chunks_exact(dim).take(5) {
            let scalar_k = sq8_kernels_at(SimdLevel::Scalar);
            let ref_dot = (scalar_k.dot)(&w, code);
            let ref_l2 = (scalar_k.l2)(&r, vstep, code);
            for level in SimdLevel::ALL {
                if !level.supported() {
                    continue;
                }
                let k = sq8_kernels_at(level);
                assert_eq!((k.dot)(&w, code).to_bits(), ref_dot.to_bits(), "dot at {level}");
                assert_eq!((k.l2)(&r, vstep, code).to_bits(), ref_l2.to_bits(), "l2 at {level}");
            }
        }
    }
}

/// A full prepared-query bucket scan produces exactly the distances the
/// single-row fused reference computes — tiling and loop-splitting change
/// nothing observable.
#[test]
fn prepared_scan_matches_per_row_fused_reference() {
    for (variant, metric) in [
        (IvfVariant::Sq8, Metric::L2),
        (IvfVariant::Sq8, Metric::InnerProduct),
        (IvfVariant::Flat, Metric::L2),
        (IvfVariant::Pq, Metric::L2),
    ] {
        let dim = 32;
        let index = build(variant, metric, 300, dim);
        let q: Vec<f32> = (0..dim).map(|d| (d as f32 * 0.11).sin()).collect();
        let prepared = index.prepare(&q);
        for b in 0..index.nlist() {
            // Oversized heap: no candidate is ever rejected, so the pruned
            // PQ path cannot abandon anything and every distance must land.
            let cap = index.bucket_len(b).max(1);
            let mut heap = TopK::new(cap);
            index.scan_bucket_prepared(b, &prepared, &mut heap, None);
            let got = heap.into_sorted();

            let mut reference = TopK::new(cap);
            index.scan_bucket(b, &q, &mut reference, None);
            let want = reference.into_sorted();
            assert_eq!(got.len(), want.len(), "{variant:?} bucket {b}");
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.id, w.id, "{variant:?} bucket {b}");
                assert_eq!(g.dist.to_bits(), w.dist.to_bits(), "{variant:?} bucket {b}");
            }
        }
    }
}

/// Early-abandon equivalence: a pruned IVF_PQ search returns identical
/// ids and bit-identical distances to a manual unpruned full-lookup scan of
/// the same probed buckets.
#[test]
fn pq_early_abandon_returns_identical_results_to_unpruned() {
    let dim = 32;
    let index = build(IvfVariant::Pq, Metric::L2, 500, dim);
    let pq = index.pq_ref().unwrap();
    let queries = milvus_datagen::clustered(8, dim, 8, -1.0, 1.0, 0.15, 9);
    let params = SearchParams { k: 10, nprobe: 8, ..Default::default() };
    for q in queries.iter() {
        // Production path (prunes against TopK::threshold internally).
        let got = index.search(q, &params).unwrap();

        // Unpruned reference over the same probes with plain full lookups.
        let table = pq.distance_table(q, Metric::L2);
        let mut heap = TopK::new(params.k);
        for b in index.probe_buckets(q, params.nprobe) {
            let codes = index.bucket_codes(b).unwrap();
            for (row, code) in codes.chunks_exact(pq.m()).enumerate() {
                heap.push(index.bucket_ids(b)[row], table.lookup(code));
            }
        }
        let want = heap.into_sorted();
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.id, w.id, "pruned search changed the id set");
            assert_eq!(g.dist.to_bits(), w.dist.to_bits(), "pruned search changed a distance");
        }
    }
}

/// Filtered scans agree with unfiltered scans restricted to the allowed set
/// (the split loop bodies cannot drop or duplicate candidates).
#[test]
fn filtered_scan_equals_postfiltered_unfiltered_scan() {
    for variant in [IvfVariant::Flat, IvfVariant::Sq8, IvfVariant::Pq] {
        let index = build(variant, Metric::L2, 300, 32);
        let q: Vec<f32> = (0..32).map(|d| (d as f32 * 0.21).cos()).collect();
        let prepared = index.prepare(&q);
        for b in 0..index.nlist() {
            let cap = index.bucket_len(b).max(1);
            let mut filtered = TopK::new(cap);
            index.scan_bucket_prepared(b, &prepared, &mut filtered, Some(&|id| id % 3 == 0));
            let mut unfiltered = TopK::new(cap);
            index.scan_bucket_prepared(b, &prepared, &mut unfiltered, None);
            let want: Vec<_> =
                unfiltered.into_sorted().into_iter().filter(|n| n.id % 3 == 0).collect();
            let got = filtered.into_sorted();
            assert_eq!(got.len(), want.len(), "{variant:?} bucket {b}");
            for (g, w) in got.iter().zip(&want) {
                assert_eq!((g.id, g.dist.to_bits()), (w.id, w.dist.to_bits()), "{variant:?}");
            }
        }
    }
}

/// The fused SQ8 index search stays close to exact flat search — the fused
/// algebra must not cost recall relative to the recall floors the seed had.
#[test]
fn fused_sq8_search_recall_sanity() {
    let n = 2000;
    let dim = 32;
    let data = milvus_datagen::clustered(n, dim, 10, -1.0, 1.0, 0.12, 21);
    let ids: Vec<i64> = (0..n as i64).collect();
    let queries = milvus_datagen::queries_from(&data, 20, 0.02, 22);
    let params = BuildParams { metric: Metric::L2, nlist: 32, kmeans_iters: 8, ..Default::default() };
    let sq8 = IvfIndex::build(IvfVariant::Sq8, &data, &ids, &params).unwrap();
    let truth = milvus_datagen::ground_truth(&data, &ids, &queries, Metric::L2, 10);
    let sp = SearchParams { k: 10, nprobe: 16, ..Default::default() };
    let results: Vec<Vec<i64>> = queries
        .iter()
        .map(|q| sq8.search(q, &sp).unwrap().into_iter().map(|nb| nb.id).collect())
        .collect();
    let recall = milvus_datagen::recall_ids(&truth, &results);
    assert!(recall >= 0.75, "fused SQ8 recall {recall} fell below the seed floor");
}

/// The SQ8 batch engine agrees with per-query index scans over whole-bucket
/// code matrices (cross-crate twin of the unit test, on datagen data).
#[test]
fn sq8_batch_engine_consistent_with_prepared_scans() {
    use milvus_index::batch::{sq8_cache_aware_search_exec, BatchOptions};
    let dim = 24;
    let n = 500;
    let data = milvus_datagen::clustered(n, dim, 6, -1.0, 1.0, 0.2, 51);
    let sq = milvus_index::ivf::sq8::ScalarQuantizer::train(&data);
    let mut codes = Vec::with_capacity(n * dim);
    for row in data.iter() {
        sq.encode_into(row, &mut codes);
    }
    let ids: Vec<i64> = (0..n as i64).collect();
    let queries = milvus_datagen::queries_from(&data, 9, 0.05, 52);
    let pool = milvus_exec::Executor::new("t_qscan", 2);
    let opts = BatchOptions { k: 7, metric: Metric::L2, threads: 2, l3_cache_bytes: 1 << 14 };
    let got = sq8_cache_aware_search_exec(&pool, &codes, &sq, &ids, &queries, &opts);
    for (qi, res) in got.iter().enumerate() {
        let p = sq.prepare(queries.get(qi), Metric::L2);
        let mut heap = TopK::new(7);
        for (row, &id) in ids.iter().enumerate() {
            heap.push(id, p.distance(&codes[row * dim..(row + 1) * dim]));
        }
        let want = heap.into_sorted();
        assert_eq!(res.len(), want.len());
        for (g, w) in res.iter().zip(&want) {
            assert_eq!((g.id, g.dist.to_bits()), (w.id, w.dist.to_bits()), "q={qi}");
        }
    }
}

/// SQ8H consistency: the GPU-simulated index's CPU scans go through the same
/// prepared path; hybrid/CPU/GPU modes must all return the exact same lists.
#[test]
fn sq8h_modes_agree_after_prepared_scan_rewire() {
    use milvus_gpu::{ExecMode, GpuDevice, GpuSpec, Sq8hIndex};
    use std::sync::Arc;
    let dim = 32;
    let n = 600;
    let data = milvus_datagen::clustered(n, dim, 8, -1.0, 1.0, 0.15, 61);
    let ids: Vec<i64> = (0..n as i64).collect();
    let device = Arc::new(GpuDevice::new(0, GpuSpec::default()));
    let params = BuildParams { metric: Metric::L2, nlist: 16, kmeans_iters: 6, ..Default::default() };
    let index = Sq8hIndex::build(&data, &ids, &params, device).unwrap();
    let queries = milvus_datagen::queries_from(&data, 6, 0.05, 62);
    let sp = SearchParams { k: 10, nprobe: 8, ..Default::default() };
    let (cpu, _) = index.search_batch_mode(&queries, &sp, ExecMode::PureCpu);
    let (gpu, _) = index.search_batch_mode(&queries, &sp, ExecMode::PureGpu);
    let (hybrid, _) = index.search_batch_mode(&queries, &sp, ExecMode::Sq8h);
    assert_eq!(cpu, gpu, "CPU and GPU modes diverged");
    assert_eq!(cpu, hybrid, "CPU and hybrid modes diverged");
    // Filtered search flows through the prepared path too.
    let filtered = index.search_filtered(queries.get(0), &sp, &|id| id % 2 == 0).unwrap();
    assert!(filtered.iter().all(|nb| nb.id % 2 == 0));
    assert!(!filtered.is_empty());
}

/// A PreparedSq8 built directly from quantizer params behaves identically to
/// one built through the index (API-surface pin for the bench bin).
#[test]
fn prepared_sq8_direct_construction_matches_index_path() {
    let dim = 40;
    let index = build(IvfVariant::Sq8, Metric::InnerProduct, 300, dim);
    let (vmin, vstep) = index.sq_params().unwrap();
    let q: Vec<f32> = (0..dim).map(|d| (d as f32 * 0.31).sin()).collect();
    let direct = PreparedSq8::prepare(vmin, vstep, &q, Metric::InnerProduct);
    let bucket = (0..index.nlist()).find(|&b| index.bucket_len(b) >= 1).unwrap();
    let codes = index.bucket_codes(bucket).unwrap();
    let code = &codes[..dim];
    let mut heap = TopK::new(1);
    index.scan_bucket(bucket, &q, &mut heap, Some(&|id| id == index.bucket_ids(bucket)[0]));
    let via_index = heap.into_sorted()[0].dist;
    assert_eq!(direct.distance(code).to_bits(), via_index.to_bits());
}

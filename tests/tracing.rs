//! Integration tests for the per-query tracing subsystem: slow queries land
//! in the ring buffer with the expected span tree, sampling 0.0 records
//! nothing (verified with counters, not wall clock), the ring is bounded,
//! reader traces carry shard ids and cache outcomes, and the REST debug
//! endpoint serves the ring as JSON.
//!
//! Tracing configuration and the slow-query ring are process-global, so every
//! test that touches them serializes on [`guard`] and restores the prior
//! config before releasing it.

use std::io::{BufReader, Read as IoRead, Write as IoWrite};
use std::net::TcpStream;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use milvus_core::{CollectionConfig, Milvus};
use milvus_index::traits::SearchParams;
use milvus_index::{Metric, VectorSet};
use milvus_obs as obs;
use milvus_storage::{InsertBatch, Schema};

fn guard() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

/// Restores the previous trace config when dropped, so a failing test cannot
/// poison the config for the rest of the binary.
struct ConfigRestore(obs::TraceConfig);

impl ConfigRestore {
    fn set(cfg: obs::TraceConfig) -> Self {
        let prior = obs::trace_config();
        obs::set_trace_config(cfg);
        ConfigRestore(prior)
    }
}

impl Drop for ConfigRestore {
    fn drop(&mut self) {
        milvus_storage::clear_scan_delays();
        obs::set_trace_config(self.0.clone());
    }
}

fn batch(ids: std::ops::Range<i64>) -> InsertBatch {
    let mut vs = VectorSet::new(4);
    for id in ids.clone() {
        vs.push(&[id as f32, 0.0, 0.0, 0.0]);
    }
    InsertBatch::single(ids.collect(), vs)
}

/// A collection with two flushed segments.
fn two_segment_collection(m: &Milvus, name: &str) -> Arc<milvus_core::Collection> {
    let col = m
        .create_collection(name, Schema::single("v", 4, Metric::L2), CollectionConfig::for_tests())
        .unwrap();
    col.insert(batch(0..200)).unwrap();
    col.flush().unwrap();
    col.insert(batch(200..400)).unwrap();
    col.flush().unwrap();
    assert_eq!(col.stats().segments, 2);
    col
}

#[test]
fn slow_query_lands_in_ring_with_expected_span_tree() {
    let _g = guard();
    let _cfg = ConfigRestore::set(obs::TraceConfig {
        sample_rate: 1.0,
        slow_threshold_us: Some(5_000),
        ..obs::TraceConfig::default()
    });

    let m = Milvus::new();
    let col = two_segment_collection(&m, "trace_slow");
    let seg_ids: Vec<u64> = col.snapshot().segments.iter().map(|s| s.id).collect();
    let slow_seg = seg_ids[1];
    milvus_storage::inject_scan_delay(slow_seg, Duration::from_millis(20));

    col.search("v", &[42.0, 0.0, 0.0, 0.0], &SearchParams::top_k(3)).unwrap();
    milvus_storage::clear_scan_delays();

    let trace = m
        .slow_queries()
        .into_iter()
        .rev()
        .find(|t| t.collection == "trace_slow")
        .expect("delayed query must land in the slow-query log");
    assert_eq!(trace.op, "search");
    assert!(trace.total_us > 5_000, "total_us={}", trace.total_us);
    assert_eq!(trace.threshold_us, 5_000);
    assert_eq!(trace.dropped_spans, 0);

    let kinds: Vec<obs::SpanKind> = trace.spans.iter().map(|s| s.kind).collect();
    assert!(kinds.contains(&obs::SpanKind::Parse), "{kinds:?}");
    assert!(kinds.contains(&obs::SpanKind::Route), "{kinds:?}");
    assert!(kinds.contains(&obs::SpanKind::HeapMerge), "{kinds:?}");
    let scans: Vec<&obs::Span> =
        trace.spans.iter().filter(|s| s.kind == obs::SpanKind::SegmentScan).collect();
    assert_eq!(scans.len(), 2, "one scan span per segment: {:?}", trace.spans);
    assert!(scans.iter().all(|s| s.rows_scanned == 200), "{scans:?}");

    // The per-segment spans show exactly which segment consumed the time.
    let hottest = trace.hottest_span().unwrap();
    assert_eq!(hottest.kind, obs::SpanKind::SegmentScan);
    assert_eq!(hottest.segment_id, slow_seg as i64);
    assert!(hottest.dur_us >= 15_000, "dur_us={}", hottest.dur_us);
}

#[test]
fn sampling_zero_records_nothing_and_adds_no_counter_traffic() {
    let _g = guard();
    let _cfg = ConfigRestore::set(obs::TraceConfig {
        sample_rate: 0.0,
        slow_threshold_us: Some(0), // any sampled query would be "slow"
        ..obs::TraceConfig::default()
    });

    let m = Milvus::new();
    let col = two_segment_collection(&m, "trace_unsampled");

    let sampled_before = obs::registry().counter(obs::TRACES_SAMPLED, "").get();
    let spans_before = obs::registry().counter(obs::TRACE_SPANS, "").get();
    for i in 0..20 {
        col.search("v", &[i as f32, 0.0, 0.0, 0.0], &SearchParams::top_k(5)).unwrap();
    }
    assert_eq!(obs::registry().counter(obs::TRACES_SAMPLED, "").get(), sampled_before);
    assert_eq!(obs::registry().counter(obs::TRACE_SPANS, "").get(), spans_before);
    assert!(
        !m.slow_queries().iter().any(|t| t.collection == "trace_unsampled"),
        "unsampled queries must never reach the ring"
    );
}

#[test]
fn tracing_at_zero_sampling_is_free_in_the_batch_engine_hot_loop() {
    let _g = guard();
    let _cfg = ConfigRestore::set(obs::TraceConfig {
        sample_rate: 0.0,
        ..obs::TraceConfig::default()
    });

    let mut data = VectorSet::new(8);
    let mut queries = VectorSet::new(8);
    for i in 0..500 {
        data.push(&[i as f32, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
    }
    for i in 0..40 {
        queries.push(&[i as f32, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
    }
    let ids: Vec<i64> = (0..500).collect();
    let opts = milvus_index::batch::BatchOptions {
        k: 5,
        metric: Metric::L2,
        threads: 2,
        l3_cache_bytes: 1 << 20,
    };

    // Counter-based overhead assertion: TRACES_SAMPLED / TRACE_SPANS move
    // only for sampled traces, so if the hot loop did any tracing work at
    // sampling 0.0 these counters (or the span count) would move.
    let sampled_before = obs::registry().counter(obs::TRACES_SAMPLED, "").get();
    let spans_before = obs::registry().counter(obs::TRACE_SPANS, "").get();

    let label: Arc<str> = Arc::from("batch_overhead");
    let mut trace = obs::Trace::start("batch", &label);
    assert!(!trace.enabled(), "sampler must reject every admission at 0.0");
    let traced =
        milvus_index::batch::cache_aware_search_traced(&data, &ids, &queries, &opts, &mut trace);
    let plain = milvus_index::batch::cache_aware_search(&data, &ids, &queries, &opts);

    assert_eq!(traced, plain, "disabled tracing must not change results");
    assert_eq!(trace.span_count(), 0);
    assert!(trace.finish().is_none());
    assert_eq!(obs::registry().counter(obs::TRACES_SAMPLED, "").get(), sampled_before);
    assert_eq!(obs::registry().counter(obs::TRACE_SPANS, "").get(), spans_before);
}

#[test]
fn ring_buffer_is_bounded_end_to_end() {
    let _g = guard();
    let _cfg = ConfigRestore::set(obs::TraceConfig {
        sample_rate: 1.0,
        slow_threshold_us: Some(0),
        ring_capacity: 4,
        ..obs::TraceConfig::default()
    });

    let m = Milvus::new();
    let col = two_segment_collection(&m, "trace_ring");
    for i in 0..12 {
        col.search("v", &[i as f32, 0.0, 0.0, 0.0], &SearchParams::top_k(2)).unwrap();
    }
    let ring = m.slow_queries();
    assert!(ring.len() <= 4, "ring holds {} entries, capacity 4", ring.len());
    // Newest entries survive: the ring keeps the most recent slow queries.
    assert!(ring.iter().any(|t| t.collection == "trace_ring"));
}

#[test]
fn reader_traces_carry_shard_ids_and_cache_outcomes() {
    let _g = guard();
    let _cfg = ConfigRestore::set(obs::TraceConfig {
        sample_rate: 1.0,
        slow_threshold_us: Some(0),
        ..obs::TraceConfig::default()
    });

    use milvus_distributed::reader::ReaderNode;
    use milvus_distributed::writer::WriterNode;
    use milvus_distributed::Coordinator;
    use milvus_storage::object_store::{MemoryStore, ObjectStore};

    // One shard: per-shard LSM engines number segments independently, so a
    // multi-shard reader would alias distinct segments onto one id in the
    // per-segment stats.
    let coordinator = Coordinator::new(1);
    let shared: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
    let schema = Schema::single("v", 2, Metric::L2);
    let cfg = milvus_storage::LsmConfig { auto_merge: false, ..Default::default() };
    let writer =
        WriterNode::new(schema.clone(), cfg, Arc::clone(&shared), Arc::clone(&coordinator))
            .unwrap();
    let reader = ReaderNode::register(schema, coordinator, shared, 64 << 20);

    let ids: Vec<i64> = (0..80).collect();
    let mut vs = VectorSet::new(2);
    for &id in &ids {
        vs.push(&[id as f32, 0.0]);
    }
    writer.insert(InsertBatch::single(ids, vs)).unwrap();
    writer.flush().unwrap();
    reader.refresh().unwrap();

    let mut trace = obs::Trace::forced("reader_search", "reader_trace_test");
    reader.search_traced("v", &[7.0, 0.0], &SearchParams::top_k(3), &mut trace).unwrap();
    let finished = trace.finish().expect("threshold 0 makes any query slow");

    let scans: Vec<&obs::Span> =
        finished.spans.iter().filter(|s| s.kind == obs::SpanKind::SegmentScan).collect();
    assert!(!scans.is_empty(), "reader search must record segment scans");
    for s in &scans {
        assert!(s.shard >= 0, "reader scan spans must carry the shard id: {s:?}");
        assert!(s.segment_id >= 0);
        // The first refresh loaded every segment from shared storage.
        assert_eq!(s.cache, obs::CacheOutcome::Miss, "{s:?}");
    }

    // Per-segment bufferpool telemetry matches what the spans say.
    let per_seg = reader.segment_cache_stats();
    assert!(!per_seg.is_empty());
    for (_, st) in &per_seg {
        assert_eq!(st.misses, 1);
        assert!(st.resident_bytes > 0);
    }

    // Second refresh: same versions → hits, visible per segment.
    reader.refresh().unwrap();
    for (_, st) in reader.segment_cache_stats() {
        assert_eq!(st.hits, 1);
        assert_eq!(st.misses, 1);
    }
}

/// Minimal blocking HTTP client returning (status line, raw body).
fn http(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut response = String::new();
    BufReader::new(stream).read_to_string(&mut response).unwrap();
    let status = response.lines().next().unwrap_or("").to_string();
    let body = response.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
    (status, body)
}

#[test]
fn rest_debug_endpoint_serves_slow_queries_as_json() {
    let _g = guard();
    let _cfg = ConfigRestore::set(obs::TraceConfig {
        sample_rate: 1.0,
        slow_threshold_us: Some(1_000),
        ..obs::TraceConfig::default()
    });

    let m = Arc::new(Milvus::new());
    let server = milvus_core::rest::RestServer::serve(Arc::clone(&m), "127.0.0.1:0").unwrap();
    let addr = server.addr();

    let (status, _) = http(
        addr,
        "POST",
        "/collections",
        r#"{"name":"trace_rest","dim":2,"metric":"L2"}"#,
    );
    assert!(status.contains("201"), "{status}");
    http(
        addr,
        "POST",
        "/collections/trace_rest/entities",
        r#"{"ids":[1,2,3],"vectors":[[0.0,0.0],[1.0,0.0],[2.0,0.0]]}"#,
    );
    http(addr, "POST", "/collections/trace_rest/flush", "");

    // Make the one flushed segment pathologically slow, then query it.
    let seg_id = m.collection("trace_rest").unwrap().snapshot().segments[0].id;
    milvus_storage::inject_scan_delay(seg_id, Duration::from_millis(10));
    let (status, _) =
        http(addr, "POST", "/collections/trace_rest/search", r#"{"vector":[1.1,0.0],"k":1}"#);
    assert!(status.contains("200"), "{status}");
    milvus_storage::clear_scan_delays();

    let (status, body) = http(addr, "GET", "/debug/slow_queries", "");
    assert!(status.contains("200"), "{status}");
    let parsed = serde::parse_value(&body).expect("debug endpoint must serve valid JSON");
    let entries = parsed
        .get("slow_queries")
        .and_then(|v| v.as_array())
        .expect("slow_queries array");
    let entry = entries
        .iter()
        .rev()
        .find(|t| t.get("collection").and_then(|c| c.as_str()) == Some("trace_rest"))
        .expect("the delayed query must appear in /debug/slow_queries");
    let spans = entry.get("spans").and_then(|v| v.as_array()).expect("spans array");
    let slow_scan = spans
        .iter()
        .filter(|s| s.get("kind").and_then(|k| k.as_str()) == Some("segment_scan"))
        .max_by_key(|s| s.get("dur_us").and_then(|d| d.as_u64()).unwrap_or(0))
        .expect("per-segment scan spans present");
    assert_eq!(
        slow_scan.get("segment_id").and_then(|v| v.as_u64()),
        Some(seg_id),
        "the span tree must attribute the time to the delayed segment"
    );
    assert!(
        slow_scan.get("dur_us").and_then(|v| v.as_u64()).unwrap_or(0) >= 8_000,
        "{slow_scan:?}"
    );

    // The metrics endpoint declares the bufferpool families even with zero
    // observations (anti-flapping), alongside the tracing counters.
    let (status, metrics) = http(addr, "GET", "/metrics", "");
    assert!(status.contains("200"), "{status}");
    for family in [
        "milvus_bufferpool_hits_total",
        "milvus_bufferpool_misses_total",
        "milvus_bufferpool_evictions_total",
        "milvus_bufferpool_resident_bytes",
        "milvus_slow_queries_total",
        "milvus_traces_sampled_total",
    ] {
        assert!(metrics.contains(&format!("# HELP {family} ")), "missing HELP for {family}");
    }
    assert!(metrics.contains(r#"milvus_slow_queries_total{collection="trace_rest"}"#), "{metrics}");

    server.shutdown();
}

//! ISSUE 7 acceptance: the health/SLO surface flips ok → degraded under a
//! seeded SimNet partition and returns to ok after heal + resync — fully
//! deterministic, because every signal the health model consumes is a
//! count, ratio or gauge (no wall-clock denominators) and window
//! boundaries are placed explicitly with the SimNet virtual clock.
//!
//! The metrics registry and flight recorder are process-global; this file
//! is its own test binary and its tests serialize on [`GLOBAL_STATE`], so
//! frames recorded by one test are guaranteed adjacent.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use milvus_core::rest::RestServer;
use milvus_core::Milvus;
use milvus_distributed::{Cluster, NodeId, SimNet};
use milvus_index::traits::SearchParams;
use milvus_index::{Metric, VectorSet};
use milvus_obs::HealthStatus;
use milvus_storage::object_store::MemoryStore;
use milvus_storage::{InsertBatch, LsmConfig, Schema};

const DIM: usize = 16;

/// Serializes the tests in this binary: they all read and window the
/// process-global metrics registry and flight recorder.
static GLOBAL_STATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn sim_cluster(shards: usize, readers: usize, seed: u64) -> (Cluster, Arc<SimNet>) {
    let net = SimNet::new(seed);
    let c = Cluster::with_transport(
        Schema::single("v", DIM, Metric::L2),
        shards,
        readers,
        Arc::new(MemoryStore::new()),
        LsmConfig { auto_merge: false, ..Default::default() },
        net.clone(),
    )
    .unwrap();
    (c, net)
}

fn fill(c: &Cluster, n: i64) {
    let mut vs = VectorSet::new(DIM);
    for i in 0..n {
        let mut v = [0.0f32; DIM];
        v[0] = i as f32;
        v[1] = (i % 7) as f32;
        vs.push(&v);
    }
    c.insert(InsertBatch::single((0..n).collect(), vs)).unwrap();
    c.flush().unwrap();
}

fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut s = TcpStream::connect(addr).unwrap();
    write!(s, "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n").unwrap();
    let mut buf = String::new();
    s.read_to_string(&mut buf).unwrap();
    let status = buf.lines().next().unwrap_or_default().to_string();
    let body = buf.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

#[test]
fn health_flips_to_degraded_under_partition_and_recovers_after_heal() {
    let _global = GLOBAL_STATE.lock().unwrap_or_else(|e| e.into_inner());
    let (c, net) = sim_cluster(8, 2, 71);
    fill(&c, 300);

    let m = Arc::new(Milvus::new());
    let server = RestServer::serve(Arc::clone(&m), "127.0.0.1:0").unwrap();
    let addr = server.addr();
    let sp = SearchParams::top_k(5);
    let q = [1.0f32; DIM];

    // Phase 0 — clean search establishes full coverage; a frame at virtual
    // t0 closes the warm-up window, so health judges only what follows.
    let clean = c.search_detailed("v", &q, &sp).unwrap();
    assert!(clean.is_complete());
    let t0 = net.virtual_time().as_micros() as u64;
    m.tick_timeseries_at(t0);
    let r = m.health();
    assert_eq!(r.status, HealthStatus::Ok, "{r:?}");
    let (status, body) = http_get(addr, "/health");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("\"status\":\"ok\""), "{body}");

    // The hash ring must split the shards for the scenario below: the
    // victim's shards become uncovered while the survivor's stay served.
    let readers = c.readers();
    let (victim, survivor) = if readers[0].assigned_shards().is_empty() {
        (&readers[1], &readers[0])
    } else {
        (&readers[0], &readers[1])
    };
    let victim_shards = victim.assigned_shards();
    assert!(
        !victim_shards.is_empty() && !survivor.assigned_shards().is_empty(),
        "ring must give both readers shards"
    );

    // Phase 1 — cut the victim's query link. No search yet (a failover
    // search would warm the survivor's cache with the orphan shards); the
    // transport component already sees the down link gauges and degrades.
    net.partition(NodeId::Client, NodeId::Reader(victim.id));
    let r = m.health();
    assert_eq!(r.status, HealthStatus::Degraded, "{r:?}");
    assert_eq!(r.components[1].component, "transport");
    assert_eq!(r.components[1].status, HealthStatus::Degraded, "{r:?}");
    assert!(r.components[1].reason.contains("links down"), "{}", r.components[1].reason);
    assert_eq!(r.components[3].status, HealthStatus::Ok, "no degraded search yet: {r:?}");
    let (status, body) = http_get(addr, "/health");
    assert!(status.contains("200"), "degraded still serves: {status}");
    assert!(body.contains("\"status\":\"degraded\""), "{body}");

    // Phase 2 — also cut the survivor's storage link, so the orphan shards
    // cannot be re-fanned (the cache fill needs storage). The next search
    // is genuinely degraded: partial coverage gauge, degraded-search
    // counter, search component degraded.
    let degraded_before =
        milvus_obs::registry().snapshot().counter(milvus_obs::SEARCH_DEGRADED, "cluster");
    net.partition(NodeId::Reader(survivor.id), NodeId::Storage);
    let partial = c.search_detailed("v", &q, &sp).unwrap();
    assert_eq!(partial.uncovered_shards, victim_shards, "{partial:?}");
    assert!(!partial.neighbors.is_empty(), "survivor's own shards still answer");
    let snap = milvus_obs::registry().snapshot();
    assert!(
        snap.counter(milvus_obs::SEARCH_DEGRADED, "cluster") > degraded_before,
        "degraded search must be counted"
    );
    let ppm = snap.gauge(milvus_obs::SEARCH_COVERAGE_RATIO, "cluster");
    assert!(ppm > 0 && ppm < 1_000_000, "coverage must be partial, got {ppm} ppm");
    let r = m.health();
    assert_eq!(r.status, HealthStatus::Degraded, "{r:?}");
    assert_eq!(r.components[3].component, "search");
    assert_eq!(r.components[3].status, HealthStatus::Degraded, "{r:?}");
    assert!(r.components[3].reason.contains("coverage"), "{}", r.components[3].reason);

    // Phase 3 — heal + resync, run a clean search, close the window at
    // virtual t1: the degraded history is absorbed into the baseline and
    // health returns to ok.
    net.heal();
    c.resync().unwrap();
    let recovered = c.search_detailed("v", &q, &sp).unwrap();
    assert!(recovered.is_complete(), "heal + resync must restore coverage");
    assert_eq!(recovered.neighbors, clean.neighbors, "recovered results diverged");
    let t1 = net.virtual_time().as_micros() as u64;
    assert!(t1 > t0, "retries and timeouts must burn virtual time");
    m.tick_timeseries_at(t1);
    let r = m.health();
    assert_eq!(r.status, HealthStatus::Ok, "{r:?}");
    let (status, body) = http_get(addr, "/health");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("\"status\":\"ok\""), "{body}");

    // The two explicit frames give the time-series view one closed window.
    assert!(m.timeseries().windows() >= 2);
    server.shutdown();
}

/// ISSUE 9: a shed burst from the admission controller degrades the
/// executor component — the pool turned traffic away, which is load it
/// could not absorb — and a new frame absorbs the burst so health recovers.
/// The shed itself is driven end to end: a real query pinned in a segment
/// scan by an injected delay exhausts a budget of one, so the next query
/// fails typed (SDK) and as HTTP 429 (REST), and `/health` flips.
#[test]
fn shed_burst_degrades_health_and_recovers_next_window() {
    let _global = GLOBAL_STATE.lock().unwrap_or_else(|e| e.into_inner());
    let m = Arc::new(Milvus::new());
    let mut cfg = milvus_core::CollectionConfig::for_tests();
    cfg.scheduler.adaptive = false;
    cfg.scheduler.max_inflight = 1;
    let col = m
        .create_collection("shed_health", Schema::single("v", DIM, Metric::L2), cfg)
        .unwrap();
    let mut vs = VectorSet::new(DIM);
    for i in 0..64i64 {
        let mut v = [0.0f32; DIM];
        v[0] = i as f32;
        vs.push(&v);
    }
    col.insert(InsertBatch::single((0..64).collect(), vs)).unwrap();
    col.flush().unwrap();
    let seg_id = col.snapshot().segments[0].id;

    let server = RestServer::serve(Arc::clone(&m), "127.0.0.1:0").unwrap();
    let addr = server.addr();

    // Close the warm-up window: health judges only what follows.
    m.tick_timeseries();
    assert_eq!(m.health().status, HealthStatus::Ok, "{:?}", m.health());

    // Pin one query inside the segment scan; with a budget of one, every
    // query arriving while it sleeps is shed.
    milvus_storage::segment::inject_scan_delay(seg_id, std::time::Duration::from_secs(3));
    let pinned = {
        let col = Arc::clone(&col);
        std::thread::spawn(move || col.search("v", &[1.0; DIM], &SearchParams::top_k(3)))
    };
    std::thread::sleep(std::time::Duration::from_millis(300));

    // SDK: typed error, never a silently degraded result.
    let err = col
        .search("v", &[1.0; DIM], &SearchParams::top_k(3))
        .expect_err("budget of 1 is held by the pinned query");
    assert!(
        matches!(err, milvus_core::MilvusError::Overloaded { inflight: 1, budget: 1, .. }),
        "{err:?}"
    );

    // REST: the same shed surfaces as 429 Too Many Requests.
    let mut s = TcpStream::connect(addr).unwrap();
    let body = format!(r#"{{"vector":{:?},"k":3}}"#, [1.0f32; DIM].to_vec());
    write!(
        s,
        "POST /collections/shed_health/search HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut resp = String::new();
    s.read_to_string(&mut resp).unwrap();
    assert!(resp.starts_with("HTTP/1.1 429"), "{resp}");
    assert!(resp.contains("overloaded"), "{resp}");

    // Health: executor degraded with the shed burst in its reason; the REST
    // surface agrees while still serving.
    let r = m.health();
    assert_eq!(r.components[0].component, "executor");
    assert_eq!(r.components[0].status, HealthStatus::Degraded, "{r:?}");
    assert!(r.components[0].reason.contains("shed"), "{}", r.components[0].reason);
    assert_eq!(r.status, HealthStatus::Degraded, "{r:?}");
    let (status, body) = http_get(addr, "/health");
    assert!(status.contains("200"), "degraded still serves: {status}");
    assert!(body.contains("\"status\":\"degraded\""), "{body}");

    // The pinned query itself completes normally — shed queries failed
    // typed, admitted ones were never degraded.
    let hits = pinned.join().unwrap().unwrap();
    assert!(!hits.is_empty());
    milvus_storage::segment::clear_scan_delays();

    // A new frame absorbs the burst; with no fresh sheds health returns
    // to ok — the signal is windowed, not latched.
    m.tick_timeseries();
    let r = m.health();
    assert_eq!(r.status, HealthStatus::Ok, "{r:?}");
    server.shutdown();
}

/// ISSUE 10: the writer component tracks the failover lifecycle end to
/// end. A crashed writer that a standby takes over lands one failover in
/// the open window (degraded); a crash whose promotion *also* fails leaves
/// the writer genuinely down (unhealthy, `/health` → 503); a heal lets the
/// old writer answer again, which must repair the up-gauge; and the next
/// window absorbs the burst back to ok.
#[test]
fn writer_failover_degrades_health_then_recovers() {
    let _global = GLOBAL_STATE.lock().unwrap_or_else(|e| e.into_inner());
    let net = SimNet::new(73);
    let c = Cluster::with_failover(
        Schema::single("v", DIM, Metric::L2),
        4,
        2,
        Arc::new(MemoryStore::new()),
        LsmConfig { auto_merge: false, ..Default::default() },
        net.clone(),
    )
    .unwrap();
    fill(&c, 200);

    let m = Arc::new(Milvus::new());
    let server = RestServer::serve(Arc::clone(&m), "127.0.0.1:0").unwrap();
    let addr = server.addr();

    let one_row = |id: i64| {
        let mut vs = VectorSet::new(DIM);
        let mut v = [0.0f32; DIM];
        v[0] = id as f32;
        vs.push(&v);
        InsertBatch::single(vec![id], vs)
    };

    // Phase 0 — clean window: the writer component exists and is ok.
    let t0 = net.virtual_time().as_micros() as u64;
    m.tick_timeseries_at(t0);
    let r = m.health();
    assert_eq!(r.components[4].component, "writer");
    assert_eq!(r.components[4].status, HealthStatus::Ok, "{r:?}");
    assert_eq!(r.status, HealthStatus::Ok, "{r:?}");

    // Phase 1 — crash the writer; the next insert promotes a standby and
    // succeeds. The failover lands in the open window: degraded, but the
    // surface still serves.
    net.partition(NodeId::Client, c.writer_endpoint());
    net.partition(c.writer_endpoint(), NodeId::Storage);
    c.insert(one_row(1000)).unwrap();
    assert_eq!(c.takeover_generation(), 1);
    let r = m.health();
    assert_eq!(r.components[4].status, HealthStatus::Degraded, "{r:?}");
    assert!(r.components[4].reason.contains("failovers"), "{}", r.components[4].reason);
    assert_eq!(r.status, HealthStatus::Degraded, "{r:?}");
    let (status, body) = http_get(addr, "/health");
    assert!(status.contains("200"), "degraded still serves: {status}");
    assert!(body.contains("\"status\":\"degraded\""), "{body}");

    // Phase 2 — crash the promoted writer AND the next standby's links:
    // the promotion itself fails, so no writer is serving. Unhealthy, and
    // the REST surface says 503.
    net.partition(NodeId::Client, c.writer_endpoint());
    net.partition(c.writer_endpoint(), NodeId::Storage);
    net.partition(NodeId::Client, NodeId::Standby(2));
    net.partition(NodeId::Standby(2), NodeId::Storage);
    c.insert(one_row(1001)).unwrap_err();
    assert_eq!(c.takeover_generation(), 1, "failed promotion must not bump the generation");
    let r = m.health();
    assert_eq!(r.components[4].status, HealthStatus::Unhealthy, "{r:?}");
    assert_eq!(r.status, HealthStatus::Unhealthy, "{r:?}");
    let (status, _) = http_get(addr, "/health");
    assert!(status.contains("503"), "unhealthy must be a load-balancer signal: {status}");

    // Phase 3 — heal: the generation-1 writer answers again. The success
    // must repair the up-gauge (the failed promotion left it at 0), so the
    // component falls back to degraded (failovers still in window), not
    // unhealthy.
    net.heal();
    c.insert(one_row(1001)).unwrap();
    assert_eq!(c.takeover_generation(), 1);
    let r = m.health();
    assert_eq!(r.components[4].status, HealthStatus::Degraded, "{r:?}");
    assert_eq!(r.status, HealthStatus::Degraded, "{r:?}");

    // Phase 4 — close the window past the burst: health returns to ok.
    let t1 = net.virtual_time().as_micros() as u64;
    assert!(t1 > t0, "exhausted retries must burn virtual time");
    m.tick_timeseries_at(t1);
    let r = m.health();
    assert_eq!(r.status, HealthStatus::Ok, "{r:?}");
    let (status, body) = http_get(addr, "/health");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    server.shutdown();
}

//! Network partition / fault-injection suite for the distributed layer
//! (DESIGN.md §9): every coordinator↔writer↔reader↔storage interaction
//! routes through a seeded [`SimNet`], so drops, delays, duplicates,
//! reorders and (a)symmetric partitions are injected deterministically and
//! the failover paths are exercised for real.
//!
//! The invariant throughout: a search that reports complete coverage
//! (`SearchReport::is_complete`) returns results **identical** to the
//! fault-free reference — failover may degrade latency, never correctness.

use std::sync::Arc;

use milvus_datagen as datagen;
use milvus_distributed::{Cluster, NodeId, RetryPolicy, SimNet, Transport};
use milvus_index::traits::SearchParams;
use milvus_index::{Metric, Neighbor, VectorSet};
use milvus_storage::object_store::MemoryStore;
use milvus_storage::{InsertBatch, LsmConfig, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIM: usize = 16;

fn sim_cluster(shards: usize, readers: usize, seed: u64) -> (Cluster, Arc<SimNet>) {
    let net = SimNet::new(seed);
    let c = Cluster::with_transport(
        Schema::single("v", DIM, Metric::L2),
        shards,
        readers,
        Arc::new(MemoryStore::new()),
        LsmConfig { auto_merge: false, ..Default::default() },
        net.clone(),
    )
    .unwrap();
    (c, net)
}

fn direct_cluster(shards: usize, readers: usize) -> Cluster {
    Cluster::new(
        Schema::single("v", DIM, Metric::L2),
        shards,
        readers,
        Arc::new(MemoryStore::new()),
        LsmConfig { auto_merge: false, ..Default::default() },
    )
    .unwrap()
}

fn fill(c: &Cluster, data: &VectorSet) {
    let ids: Vec<i64> = (0..data.len() as i64).collect();
    c.insert(InsertBatch::single(ids, data.clone())).unwrap();
    c.flush().unwrap();
}

/// Regression test for the old first-error propagation at the search
/// fan-out: killing one reader's query link mid-stream must no longer abort
/// the whole query — the dead reader's shards are re-fanned to survivors
/// and the merged result matches the serial (fault-free) reference exactly.
#[test]
fn reader_link_killed_mid_query_matches_serial_reference() {
    let data = datagen::clustered(600, DIM, 12, -1.0, 1.0, 0.2, 901);
    let (c, net) = sim_cluster(8, 3, 31);
    fill(&c, &data);
    let reference = direct_cluster(8, 3);
    fill(&reference, &data);

    let sp = SearchParams::top_k(10);
    let queries = datagen::queries_from(&data, 8, 0.05, 902);
    let victim = c.readers()[1].id;
    for qi in 0..queries.len() {
        if qi == 3 {
            // Kill the victim's query link mid-stream (both directions).
            net.partition(NodeId::Client, NodeId::Reader(victim));
        }
        let q = queries.get(qi);
        let report = c.search_detailed("v", q, &sp).unwrap();
        let expect = reference.search("v", q, &sp).unwrap();
        assert!(report.is_complete(), "query {qi}: coverage degraded");
        assert_eq!(report.neighbors, expect, "query {qi}");
        if qi >= 3 {
            assert_eq!(report.failed_readers, vec![victim], "query {qi}");
            assert!(!report.failover_shards.is_empty(), "query {qi}");
        } else {
            assert!(report.failed_readers.is_empty(), "query {qi}");
        }
    }
    let stats = net.stats();
    assert!(stats.dropped > 0 && stats.timeouts > 0 && stats.retries > 0);
}

/// (a) A reader isolated from queries but NOT from storage: survivors load
/// its shards on demand from shared storage, so results stay exact.
#[test]
fn isolated_reader_fails_over_with_exact_results() {
    let data = datagen::clustered(500, DIM, 10, -1.0, 1.0, 0.2, 903);
    let (c, net) = sim_cluster(6, 3, 32);
    fill(&c, &data);

    let sp = SearchParams::top_k(5);
    let q = data.get(123).to_vec();
    let before = c.search_detailed("v", &q, &sp).unwrap();
    assert!(before.is_complete() && before.failed_readers.is_empty());

    let victim = c.readers()[0].id;
    let victim_shards = c.readers()[0].assigned_shards();
    net.partition(NodeId::Client, NodeId::Reader(victim));

    let during = c.search_detailed("v", &q, &sp).unwrap();
    assert!(during.is_complete(), "failover must preserve full coverage");
    assert_eq!(during.neighbors, before.neighbors, "failover changed results");
    assert_eq!(during.failed_readers, vec![victim]);
    assert_eq!(during.failover_shards, victim_shards);

    net.heal();
    let after = c.search_detailed("v", &q, &sp).unwrap();
    assert!(after.failed_readers.is_empty(), "healed link still failing");
    assert_eq!(after.neighbors, before.neighbors);
}

/// (b) The coordinator↔reader link flaps during a flush: the reader misses
/// the refresh fan-out and is left stale, but after `heal()` the readers
/// converge (lazily at the next query, or eagerly on `resync()`).
#[test]
fn refresh_flap_during_flush_converges_after_heal() {
    let data = datagen::clustered(400, DIM, 8, -1.0, 1.0, 0.2, 904);
    let (c, net) = sim_cluster(4, 2, 33);
    fill(&c, &data);

    let victim = c.readers()[0].id;
    let epoch_before = c.coordinator().epoch();

    // Flap: the victim is unreachable from the coordinator AND from shared
    // storage while new data is flushed.
    net.partition(NodeId::Coordinator, NodeId::Reader(victim));
    net.partition(NodeId::Reader(victim), NodeId::Storage);
    let mut fresh = VectorSet::new(DIM);
    fresh.push(&[9.0; DIM]);
    c.insert(InsertBatch::single(vec![400], fresh)).unwrap();
    c.flush().unwrap(); // must not fail because one reader is unreachable

    let stale = c.readers().iter().find(|r| r.id == victim).unwrap().clone();
    assert!(stale.seen_epoch() <= epoch_before, "victim saw the flush through a partition");
    assert!(c.coordinator().epoch() > epoch_before);

    // While flapped, queries still see the new row: the stale reader cannot
    // catch up (storage link down), so its shards fail over to survivors.
    let sp = SearchParams::top_k(1);
    let report = c.search_detailed("v", &[9.0; DIM], &sp).unwrap();
    assert!(report.is_complete());
    assert_eq!(report.neighbors[0].id, 400);

    // Heal; resync converges every reader to the current epoch.
    net.heal();
    c.resync().unwrap();
    assert_eq!(stale.seen_epoch(), c.coordinator().epoch(), "reader did not converge");
    let report = c.search_detailed("v", &[9.0; DIM], &sp).unwrap();
    assert!(report.failed_readers.is_empty());
    assert_eq!(report.neighbors[0].id, 400);
}

/// (c) An asymmetric link (requests delivered, responses dropped — and the
/// reverse) terminates instead of deadlocking: bounded retries burn virtual
/// time only, then the shards fail over.
#[test]
fn asymmetric_link_does_not_deadlock() {
    let data = datagen::clustered(300, DIM, 6, -1.0, 1.0, 0.2, 905);
    let sp = SearchParams::top_k(5);
    let wall = std::time::Instant::now();

    for lost_leg in ["request", "response"] {
        let (c, net) = sim_cluster(4, 2, 34);
        fill(&c, &data);
        let q = data.get(42).to_vec();
        let expect = c.search("v", &q, &sp).unwrap();

        let victim = c.readers()[0].id;
        match lost_leg {
            "request" => net.partition_oneway(NodeId::Client, NodeId::Reader(victim)),
            _ => net.partition_oneway(NodeId::Reader(victim), NodeId::Client),
        }
        let report = c.search_detailed("v", &q, &sp).unwrap();
        assert!(report.is_complete(), "{lost_leg}: coverage degraded");
        assert_eq!(report.neighbors, expect, "{lost_leg}: results changed");
        assert_eq!(report.failed_readers, vec![victim], "{lost_leg}");
        assert!(net.virtual_time() > std::time::Duration::ZERO, "{lost_leg}");
    }
    // Timeouts and backoff are virtual: the whole test runs in real
    // milliseconds, which is the no-deadlock/no-sleep guarantee.
    assert!(wall.elapsed() < std::time::Duration::from_secs(10));
}

/// (d) Log-ship messages that are duplicated and reordered in flight leave
/// the shipped WAL idempotent: a standby replays to the same state as a
/// writer whose link was clean.
#[test]
fn duplicated_reordered_log_ship_is_idempotent() {
    use milvus_distributed::coordinator::Coordinator;
    use milvus_distributed::writer::WriterNode;

    let schema = Schema::single("v", DIM, Metric::L2);
    let cfg = LsmConfig { auto_merge: false, ..Default::default() };
    let data = datagen::clustered(240, DIM, 6, -1.0, 1.0, 0.2, 906);

    let run = |dup: f64, reorder: f64| -> (usize, Vec<String>) {
        let shared: Arc<dyn milvus_storage::object_store::ObjectStore> =
            Arc::new(MemoryStore::new());
        let coordinator = Coordinator::new(4);
        let net = SimNet::new(35);
        net.set_duplicate(NodeId::Writer, NodeId::Storage, dup);
        net.set_reorder(NodeId::Writer, NodeId::Storage, reorder);
        {
            let writer = WriterNode::with_log_shipping_transport(
                schema.clone(),
                cfg.clone(),
                Arc::clone(&shared),
                Arc::clone(&coordinator),
                net.clone(),
            )
            .unwrap();
            // Flushed prefix + a log-only tail, mirroring a writer crash.
            let head: Vec<usize> = (0..160).collect();
            writer
                .insert(InsertBatch::single((0..160).collect(), data.gather(&head)))
                .unwrap();
            writer.flush().unwrap();
            let tail: Vec<usize> = (160..240).collect();
            writer
                .insert(InsertBatch::single((160..240).collect(), data.gather(&tail)))
                .unwrap();
            writer.delete(&[7, 77]).unwrap();
        }
        // The network finally delivers everything it held back.
        net.flush_pending();
        let standby =
            WriterNode::standby_takeover(schema.clone(), cfg.clone(), Arc::clone(&shared), coordinator)
                .unwrap();
        let mut wal_keys = shared.list("wal/").unwrap();
        wal_keys.sort();
        (standby.live_rows(), wal_keys)
    };

    let (clean_rows, _) = run(0.0, 0.0);
    assert_eq!(clean_rows, 238); // 240 - 2 deletes
    let (faulty_rows, faulty_keys) = run(1.0, 0.6);
    assert_eq!(faulty_rows, clean_rows, "duplicated/reordered log-ship diverged");
    // Duplicates landed on the same keys: no phantom records appear.
    assert_eq!(faulty_keys.iter().collect::<std::collections::HashSet<_>>().len(), faulty_keys.len());
}

/// Transcript of one chaos run: every completed search's exact results (bit
/// patterns, not approximate floats) plus every coverage report.
fn chaos_run(seed: u64) -> Vec<String> {
    let data = datagen::clustered(800, DIM, 16, -1.0, 1.0, 0.2, 907);
    let (c, net) = sim_cluster(8, 3, seed);
    let reference = direct_cluster(8, 3);
    // Retries are cheap in virtual time; a deeper budget rides out higher
    // loss rates without giving up coverage too early.
    c.set_retry_policy(RetryPolicy { attempts: 5, ..Default::default() });

    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
    let mut transcript = Vec::new();
    let mut next_id: i64 = 0;
    let mut pending: Vec<(Vec<i64>, VectorSet)> = Vec::new();
    let sp = SearchParams::top_k(10);
    let reader_ids: Vec<u64> = c.readers().iter().map(|r| r.id).collect();

    let insert_some = |c: &Cluster,
                           reference: &Cluster,
                           rng: &mut StdRng,
                           next_id: &mut i64,
                           pending: &mut Vec<(Vec<i64>, VectorSet)>| {
        let n = rng.gen_range(5..20);
        let rows: Vec<usize> = (0..n).map(|_| rng.gen_range(0..data.len())).collect();
        let ids: Vec<i64> = (0..n as i64).map(|i| *next_id + i).collect();
        *next_id += n as i64;
        let vs = data.gather(&rows);
        // Writes never traverse a faulted link in this schedule, so both
        // clusters apply the exact same sequence.
        c.insert(InsertBatch::single(ids.clone(), vs.clone())).unwrap();
        reference.insert(InsertBatch::single(ids.clone(), vs.clone())).unwrap();
        pending.push((ids, vs));
    };

    // Seed both clusters identically before the faults start.
    insert_some(&c, &reference, &mut rng, &mut next_id, &mut pending);
    c.flush().unwrap();
    reference.flush().unwrap();

    let mut completed = 0usize;
    let mut degraded = 0usize;
    for step in 0..200 {
        match rng.gen_range(0..10) {
            0 | 1 => insert_some(&c, &reference, &mut rng, &mut next_id, &mut pending),
            2 => {
                c.flush().unwrap();
                reference.flush().unwrap();
                transcript.push(format!("step {step}: flush epoch={}", c.coordinator().epoch()));
            }
            3 => {
                // Perturb the network: partition a reader's query, refresh
                // or storage link, or make it lossy. Writer links are never
                // touched, so the two clusters hold identical data.
                let r = NodeId::Reader(*rand::seq::SliceRandom::choose(
                    reader_ids.as_slice(),
                    &mut rng,
                )
                .unwrap());
                let peer = match rng.gen_range(0..3) {
                    0 => NodeId::Client,
                    1 => NodeId::Coordinator,
                    _ => NodeId::Storage,
                };
                let (from, to) = if peer == NodeId::Storage { (r, peer) } else { (peer, r) };
                if rng.gen_bool(0.5) {
                    net.partition(from, to);
                    transcript.push(format!("step {step}: partition {from}-{to}"));
                } else {
                    let p = rng.gen_range(0.2..0.9);
                    net.set_loss(from, to, p);
                    transcript.push(format!("step {step}: loss {from}->{to} p={p:.3}"));
                }
            }
            4 => {
                net.heal();
                c.resync().unwrap();
                transcript.push(format!("step {step}: heal"));
            }
            _ => {
                let q = data.get(rng.gen_range(0..data.len()));
                let report = c.search_detailed("v", q, &sp).unwrap();
                transcript.push(format!(
                    "step {step}: search failed={:?} failover={:?} uncovered={:?} ids={:?}",
                    report.failed_readers,
                    report.failover_shards,
                    report.uncovered_shards,
                    report
                        .neighbors
                        .iter()
                        .map(|n: &Neighbor| (n.id, n.dist.to_bits()))
                        .collect::<Vec<_>>(),
                ));
                if report.is_complete() {
                    // Complete coverage ⇒ bit-exact agreement with the
                    // fault-free reference.
                    let expect = reference.search("v", q, &sp).unwrap();
                    assert_eq!(report.neighbors, expect, "step {step}");
                    completed += 1;
                } else {
                    degraded += 1;
                }
            }
        }
    }
    transcript.push(format!(
        "summary: completed={completed} degraded={degraded} virtual={}us sent={} dropped={}",
        net.virtual_time().as_micros(),
        net.stats().sent,
        net.stats().dropped,
    ));
    assert!(completed > 30, "chaos schedule too harsh: only {completed} complete searches");
    transcript
}

/// Seeded chaos: 200 mixed operations under a fixed fault schedule. Every
/// completed search equals the fault-free reference, and the entire
/// transcript is bit-identical across two runs with the same seed.
#[test]
fn seeded_chaos_is_deterministic_and_correct() {
    let a = chaos_run(4242);
    let b = chaos_run(4242);
    assert_eq!(a, b, "same seed must give a bit-identical transcript");
    let c = chaos_run(4243);
    assert_ne!(a, c, "different seed should explore a different schedule");
}

/// Transcript of one writer-crash chaos run on a failover-enabled cluster:
/// the schedule repeatedly kills the *current* writer (ingest and storage
/// links partitioned), so takeovers happen mid-stream while searches and
/// further ingest continue.
fn writer_chaos_run(seed: u64) -> Vec<String> {
    let data = datagen::clustered(500, DIM, 10, -1.0, 1.0, 0.2, 908);
    let net = SimNet::new(seed);
    let c = Cluster::with_failover(
        Schema::single("v", DIM, Metric::L2),
        4,
        2,
        Arc::new(MemoryStore::new()),
        LsmConfig { auto_merge: false, ..Default::default() },
        net.clone(),
    )
    .unwrap();
    c.set_retry_policy(RetryPolicy { attempts: 3, ..Default::default() });

    let mut rng = StdRng::seed_from_u64(seed ^ 0xBADC0DE);
    let mut transcript = Vec::new();
    let mut next_id: i64 = 0;
    let mut acked: Vec<i64> = Vec::new();
    let sp = SearchParams::top_k(8);

    for step in 0..150 {
        match rng.gen_range(0..10) {
            0..=3 => {
                let n = rng.gen_range(4..12);
                let rows: Vec<usize> = (0..n).map(|_| rng.gen_range(0..data.len())).collect();
                let ids: Vec<i64> = (0..n as i64).map(|i| next_id + i).collect();
                next_id += n as i64;
                let res = c.insert(InsertBatch::single(ids.clone(), data.gather(&rows)));
                if res.is_ok() {
                    acked.extend(&ids);
                }
                transcript.push(format!(
                    "step {step}: insert {n} -> {} gen={}",
                    if res.is_ok() { "ack" } else { "err" },
                    c.takeover_generation(),
                ));
            }
            4 => {
                let res = c.flush();
                transcript.push(format!(
                    "step {step}: flush -> {}",
                    if res.is_ok() { "ack" } else { "err" }
                ));
            }
            5 | 6 => {
                // Kill the current writer: clients cannot reach it and it
                // cannot reach shared storage. The next ingest op promotes
                // a standby.
                let ep = c.writer_endpoint();
                net.partition(NodeId::Client, ep);
                net.partition(ep, NodeId::Storage);
                transcript.push(format!("step {step}: crash {ep}"));
            }
            7 => {
                net.heal();
                let _ = c.resync();
                transcript.push(format!("step {step}: heal"));
            }
            _ => {
                let q = data.get(rng.gen_range(0..data.len()));
                let report = c.search_detailed("v", q, &sp).unwrap();
                transcript.push(format!(
                    "step {step}: search uncovered={:?} ids={:?}",
                    report.uncovered_shards,
                    report
                        .neighbors
                        .iter()
                        .map(|n: &Neighbor| (n.id, n.dist.to_bits()))
                        .collect::<Vec<_>>(),
                ));
            }
        }
    }

    // Converge: heal, flush through the surviving writer, and verify an
    // acknowledged id is searchable (acked writes survive every takeover).
    net.heal();
    c.flush().unwrap();
    assert!(!acked.is_empty(), "schedule never acked an insert");
    let live = c.writer().live_ids();
    for id in &acked {
        assert!(live.binary_search(id).is_ok(), "acked id {id} lost after failovers");
    }
    transcript.push(format!(
        "summary: gen={} acked={} live={} virtual={}us",
        c.takeover_generation(),
        acked.len(),
        live.len(),
        net.virtual_time().as_micros(),
    ));
    transcript
}

/// Seeded writer-crash chaos: takeovers happen mid-schedule, every acked
/// insert survives, and the whole transcript (including which operations
/// failed, search bit patterns, and the takeover generation) is
/// bit-identical across two runs with the same seed.
#[test]
fn seeded_writer_crash_chaos_is_deterministic() {
    let a = writer_chaos_run(6161);
    assert!(
        a.iter().any(|l| l.contains("crash ")),
        "chaos schedule never crashed the writer"
    );
    assert!(
        !a.last().unwrap().contains("gen=0"),
        "no takeover happened: {:?}",
        a.last()
    );
    let b = writer_chaos_run(6161);
    assert_eq!(a, b, "same seed must give a bit-identical transcript");
    let c = writer_chaos_run(6162);
    assert_ne!(a, c, "different seed should explore a different schedule");
}

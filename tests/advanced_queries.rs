//! Advanced query processing across crates: attribute filtering (all five
//! strategies + the core facade) and multi-vector queries (§4).

use milvus_core::{CollectionConfig, Milvus};
use milvus_datagen as datagen;
use milvus_index::registry::IndexRegistry;
use milvus_index::traits::{BuildParams, SearchParams};
use milvus_index::{distance, Metric, VectorSet};
use milvus_query::filtering::{FilterDataset, PartitionedDataset, RangePredicate, Strategy};
use milvus_storage::{InsertBatch, Schema};

struct Fixture {
    data: VectorSet,
    ids: Vec<i64>,
    values: Vec<f64>,
}

fn fixture(n: usize) -> Fixture {
    Fixture {
        data: datagen::sift_like(n, 71),
        ids: (0..n as i64).collect(),
        values: datagen::attributes_uniform(n, 0.0, 10_000.0, 72),
    }
}

fn reference(f: &Fixture, q: &[f32], pred: RangePredicate, k: usize) -> Vec<i64> {
    let mut all: Vec<(i64, f32)> = (0..f.ids.len())
        .filter(|&r| pred.matches(f.values[r]))
        .map(|r| (f.ids[r], distance::l2_sq(q, f.data.get(r))))
        .collect();
    all.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    all.truncate(k);
    all.into_iter().map(|(id, _)| id).collect()
}

#[test]
fn all_strategies_and_partitioning_agree_exactly_on_flat() {
    let f = fixture(2_000);
    let registry = IndexRegistry::with_builtins();
    let params = BuildParams::default();
    let flat = FilterDataset::build(
        Metric::L2,
        f.data.clone(),
        f.ids.clone(),
        f.values.clone(),
        "a",
        "FLAT",
        &registry,
        &params,
    )
    .unwrap();
    let part = PartitionedDataset::build(
        Metric::L2, &f.data, &f.ids, &f.values, "a", 8, "FLAT", &registry, &params,
    )
    .unwrap();

    let queries = datagen::queries_from(&f.data, 5, 2.0, 73);
    for (lo, hi) in [(0.0, 10_000.0), (2_000.0, 3_000.0), (9_900.0, 10_000.0), (0.0, 100.0)] {
        let pred = RangePredicate::new(lo, hi);
        for qi in 0..queries.len() {
            let q = queries.get(qi);
            let expect = reference(&f, q, pred, 10);
            for strat in [Strategy::A, Strategy::B, Strategy::C, Strategy::D] {
                let (res, _) = flat.search(q, pred, &SearchParams::top_k(10), strat).unwrap();
                assert_eq!(
                    res.iter().map(|n| n.id).collect::<Vec<_>>(),
                    expect,
                    "{strat:?} range [{lo},{hi}] q{qi}"
                );
            }
            let (res, _) = part.search(q, pred, &SearchParams::top_k(10)).unwrap();
            assert_eq!(
                res.iter().map(|n| n.id).collect::<Vec<_>>(),
                expect,
                "partitioned range [{lo},{hi}] q{qi}"
            );
        }
    }
}

#[test]
fn filtering_with_ivf_keeps_high_recall() {
    let f = fixture(4_000);
    let registry = IndexRegistry::with_builtins();
    let params = BuildParams { nlist: 64, kmeans_iters: 5, ..Default::default() };
    let ds = FilterDataset::build(
        Metric::L2,
        f.data.clone(),
        f.ids.clone(),
        f.values.clone(),
        "a",
        "IVF_FLAT",
        &registry,
        &params,
    )
    .unwrap();
    let queries = datagen::queries_from(&f.data, 10, 2.0, 74);
    let pred = RangePredicate::new(0.0, 5_000.0);
    let sp = SearchParams { k: 10, nprobe: 32, ..Default::default() };
    let mut hit = 0usize;
    for qi in 0..queries.len() {
        let q = queries.get(qi);
        let expect: std::collections::HashSet<i64> =
            reference(&f, q, pred, 10).into_iter().collect();
        let (res, _) = ds.search(q, pred, &sp, Strategy::D).unwrap();
        hit += res.iter().filter(|n| expect.contains(&n.id)).count();
    }
    assert!(hit as f32 / 100.0 >= 0.9, "filtered recall {hit}/100");
}

#[test]
fn core_facade_filtered_search_matches_reference() {
    let f = fixture(1_500);
    let milvus = Milvus::new();
    let schema = Schema::single("v", 128, Metric::L2).with_attribute("a");
    let col = milvus.create_collection("filt", schema, CollectionConfig::for_tests()).unwrap();
    col.insert(InsertBatch {
        ids: f.ids.clone(),
        vectors: vec![f.data.clone()],
        attributes: vec![f.values.clone()],
    })
    .unwrap();
    col.flush().unwrap();

    let queries = datagen::queries_from(&f.data, 5, 2.0, 75);
    for qi in 0..queries.len() {
        let q = queries.get(qi);
        let expect = reference(&f, q, RangePredicate::new(1_000.0, 4_000.0), 5);
        let hits = col
            .filtered_search("v", q, "a", 1_000.0, 4_000.0, &SearchParams::top_k(5))
            .unwrap();
        assert_eq!(hits.iter().map(|h| h.id).collect::<Vec<_>>(), expect, "q{qi}");
    }
}

#[test]
fn multivector_through_core_facade() {
    let milvus = Milvus::new();
    let schema =
        Schema::single("text", 16, Metric::InnerProduct).with_vector_field("image", 12, Metric::InnerProduct);
    let col = milvus.create_collection("recipes", schema, CollectionConfig::for_tests()).unwrap();

    let n = 1_000;
    let (text, image) = datagen::recipe_like(n, 16, 12, 76);
    col.insert(InsertBatch {
        ids: (0..n as i64).collect(),
        vectors: vec![text.clone(), image.clone()],
        attributes: vec![],
    })
    .unwrap();
    col.flush().unwrap();

    let engine = col.multivector_engine("FLAT", vec![0.5, 0.5], true).unwrap();
    let q0 = text.get(31).to_vec();
    let q1 = image.get(31).to_vec();
    // Inner product is not a metric: the self-entity need not be top-1
    // (bigger-norm cluster-mates can score higher), so validate against the
    // exact reference rather than the query id.
    let exact = engine.exact(&[&q0, &q1], 5).unwrap();
    assert_eq!(exact.len(), 5);

    // Fusion and IMG agree with exact on decomposable IP.
    let fusion = engine.vector_fusion(&[&q0, &q1], &SearchParams::top_k(5)).unwrap();
    assert_eq!(
        fusion.iter().map(|x| x.id).collect::<Vec<_>>(),
        exact.iter().map(|x| x.id).collect::<Vec<_>>()
    );
    let (img, _) = engine
        .iterative_merging(&[&q0, &q1], &SearchParams::top_k(5), 16384)
        .unwrap();
    let tset: std::collections::HashSet<i64> = exact.iter().map(|x| x.id).collect();
    assert!(img.iter().filter(|x| tset.contains(&x.id)).count() >= 4);
}

#[test]
fn multivector_weights_change_the_winner() {
    // Entity 0 great in field0/terrible in field1; entity 1 the reverse.
    let f0 = VectorSet::from_flat(2, vec![1.0, 0.0, 0.0, 1.0]);
    let f1 = VectorSet::from_flat(2, vec![0.0, 1.0, 1.0, 0.0]);
    let registry = IndexRegistry::with_builtins();
    let build = |w: Vec<f32>| {
        milvus_query::multivector::MultiVectorEngine::build(
            Metric::InnerProduct,
            vec![f0.clone(), f1.clone()],
            vec![0, 1],
            w,
            "FLAT",
            &registry,
            &BuildParams::default(),
            false,
        )
        .unwrap()
    };
    let q0: Vec<f32> = vec![1.0, 0.0];
    let q1: Vec<f32> = vec![1.0, 0.0];
    // Weight on field0 → entity 0 wins; weight on field1 → entity 1 wins.
    let e = build(vec![1.0, 0.0]);
    assert_eq!(e.exact(&[&q0, &q1], 1).unwrap()[0].id, 0);
    let e = build(vec![0.0, 1.0]);
    assert_eq!(e.exact(&[&q0, &q1], 1).unwrap()[0].id, 1);
}

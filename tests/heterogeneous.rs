//! Heterogeneous-computing integration (§3): SQ8H correctness across modes,
//! big-k round-by-round search, multi-GPU scheduling, and agreement between
//! the batch engines and per-query search.

use std::sync::Arc;

use milvus_datagen as datagen;
use milvus_gpu::{bigk, ExecMode, GpuDevice, GpuSpec, MultiGpuScheduler, Sq8hIndex};
use milvus_index::batch::{cache_aware_search, faiss_style_search, BatchOptions};
use milvus_index::ivf::{IvfIndex, IvfVariant};
use milvus_index::traits::{BuildParams, SearchParams};
use milvus_index::{Metric, VectorIndex};

#[test]
fn sq8h_modes_agree_with_cpu_ivf_sq8() {
    let n = 2_000;
    let data = datagen::sift_like(n, 91);
    let ids: Vec<i64> = (0..n as i64).collect();
    let params = BuildParams { nlist: 64, kmeans_iters: 5, ..Default::default() };

    let cpu_ivf = IvfIndex::build(IvfVariant::Sq8, &data, &ids, &params).unwrap();
    let device = Arc::new(GpuDevice::new(0, GpuSpec::default()));
    let sq8h = Sq8hIndex::build(&data, &ids, &params, device).unwrap();

    let queries = datagen::queries_from(&data, 10, 2.0, 92);
    let sp = SearchParams { k: 10, nprobe: 16, ..Default::default() };
    for mode in [ExecMode::PureCpu, ExecMode::PureGpu, ExecMode::Sq8h] {
        let (results, _) = sq8h.search_batch_mode(&queries, &sp, mode);
        for (qi, res) in results.iter().enumerate() {
            let expect = cpu_ivf.search(queries.get(qi), &sp).unwrap();
            assert_eq!(res, &expect, "mode {mode:?} query {qi}");
        }
    }
}

#[test]
fn bigk_supports_k_beyond_kernel_limit() {
    let n = 3_000;
    let data = datagen::sift_like(n, 93);
    let ids: Vec<i64> = (0..n as i64).collect();
    let device = GpuDevice::new(0, GpuSpec::default()); // kernel limit 1024
    let queries = datagen::queries_from(&data, 2, 2.0, 94);

    let (results, _) = bigk::search(&device, Metric::L2, &data, &ids, &queries, 2500);
    for res in &results {
        assert_eq!(res.len(), 2500);
        // Sorted, unique.
        for w in res.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
        let mut ids: Vec<i64> = res.iter().map(|x| x.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 2500, "duplicates across rounds");
    }
}

#[test]
fn multi_gpu_segment_scheduling_balances() {
    let sched = MultiGpuScheduler::with_devices(3, GpuSpec::default());
    // 30 equal segment tasks: each device should take 10.
    let tasks: Vec<usize> = (0..30).collect();
    let assigned = sched
        .schedule(tasks, |_, dev| {
            dev.run_kernel(1_000_000_000);
            dev.ordinal
        })
        .unwrap();
    let mut counts = [0usize; 3];
    for o in assigned {
        counts[o] += 1;
    }
    assert_eq!(counts, [10, 10, 10]);

    // Elastic add: the idle newcomer takes the next task.
    sched.add_device(Arc::new(GpuDevice::new(7, GpuSpec::default())));
    assert_eq!(sched.assign().unwrap().ordinal, 7);
}

#[test]
fn batch_engines_agree_with_flat_index() {
    let n = 1_500;
    let data = datagen::deep_like(n, 95);
    let ids: Vec<i64> = (0..n as i64).collect();
    let queries = datagen::queries_from(&data, 12, 0.02, 96);
    let flat =
        milvus_index::flat::FlatIndex::build(Metric::L2, data.clone(), ids.clone()).unwrap();

    let opts = BatchOptions { k: 10, metric: Metric::L2, threads: 3, l3_cache_bytes: 1 << 20 };
    let a = faiss_style_search(&data, &ids, &queries, &opts);
    let b = cache_aware_search(&data, &ids, &queries, &opts);
    for qi in 0..queries.len() {
        let expect = flat.search(queries.get(qi), &SearchParams::top_k(10)).unwrap();
        assert_eq!(a[qi], expect, "faiss-style q{qi}");
        assert_eq!(b[qi], expect, "cache-aware q{qi}");
    }
}

#[test]
fn gpu_memory_pressure_evicts_and_recovers() {
    let n = 4_000;
    let data = datagen::sift_like(n, 97);
    let ids: Vec<i64> = (0..n as i64).collect();
    let params = BuildParams { nlist: 64, kmeans_iters: 4, ..Default::default() };
    // Device memory ~1/10 of encoded data.
    let device = Arc::new(GpuDevice::new(
        0,
        GpuSpec { global_memory_bytes: n * 128 / 10, ..Default::default() },
    ));
    let sq8h = Sq8hIndex::build(&data, &ids, &params, Arc::clone(&device)).unwrap();
    let queries = datagen::queries_from(&data, 8, 2.0, 98);
    let sp = SearchParams { k: 5, nprobe: 32, ..Default::default() };

    let (r1, rep1) = sq8h.search_batch_mode(&queries, &sp, ExecMode::PureGpu);
    let (r2, rep2) = sq8h.search_batch_mode(&queries, &sp, ExecMode::PureGpu);
    assert_eq!(r1, r2);
    assert!(rep1.transferred_bytes > 0);
    // Under pressure, the second batch must stream again (evictions).
    assert!(rep2.transferred_bytes > 0);
    assert!(device.stats().evictions > 0);
    // And residency never exceeds the configured device memory.
    assert!(device.resident_bytes() <= n * 128 / 10);
}

#[test]
fn simd_dispatch_is_consistent_under_forcing() {
    use milvus_index::distance::l2_sq;
    let data = datagen::sift_like(2, 99);
    let a = data.get(0);
    let b = data.get(1);
    let auto = l2_sq(a, b);
    for level in milvus_index::SimdLevel::ALL {
        if level.supported() {
            milvus_index::simd::force_level(level).unwrap();
            let forced = l2_sq(a, b);
            assert!(
                (auto - forced).abs() <= 1e-2 * auto.abs().max(1.0),
                "{level}: {forced} vs {auto}"
            );
        }
    }
    milvus_index::simd::reset_level();
}

//! Offline stand-in for the `criterion` crate (no network access in the
//! build environment). Implements the API subset the workspace's benches
//! use; measurement is a simple timed loop (no statistics, no HTML reports)
//! so `cargo bench` still produces comparable wall-clock numbers.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, like `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup; carried for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Label for a parameterized benchmark.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: format!("{function}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.total = start.elapsed();
    }

    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut f: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(f(input));
            total += start.elapsed();
        }
        self.total = total;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    // One warm-up pass, then a short measured run.
    let mut warmup = Bencher { iters: 1, total: Duration::ZERO };
    f(&mut warmup);
    let per_iter = warmup.total.max(Duration::from_nanos(1));
    // Aim for ~1s of measurement, capped to keep huge cases tolerable.
    let iters = (Duration::from_secs(1).as_nanos() / per_iter.as_nanos()).clamp(1, 1000) as u64;
    let mut bench = Bencher { iters, total: Duration::ZERO };
    f(&mut bench);
    let mean = bench.total / bench.iters.max(1) as u32;
    println!("bench {label:<50} {mean:>12.2?}/iter ({iters} iters)");
}

/// Group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

/// Throughput annotation; accepted and ignored.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _criterion: self }
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_function("f", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn iter_batched_times_only_the_body() {
        let mut b = Bencher { iters: 3, total: Duration::ZERO };
        b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput);
        assert!(b.total < Duration::from_secs(1));
    }
}

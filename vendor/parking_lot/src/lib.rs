//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access, so the real crates-io
//! dependency cannot be fetched. This crate re-implements the subset of the
//! `parking_lot` API the workspace uses as thin, non-poisoning wrappers over
//! `std::sync`. Lock poisoning is deliberately swallowed (`parking_lot`
//! semantics): a panicked writer does not wedge every later reader.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// Mutual exclusion lock; `lock()` returns the guard directly.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // Held as an Option so Condvar::wait can temporarily take the std guard.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.0.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

/// Reader-writer lock; `read()`/`write()` return guards directly.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(RwLockReadGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(RwLockWriteGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Condition variable with the `parking_lot` calling convention
/// (`wait(&mut guard)` instead of consuming the guard).
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken");
        let std_guard = self.0.wait(std_guard).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let std_guard = guard.inner.take().expect("guard taken");
        let (std_guard, res) = self
            .0
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
        res.timed_out()
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(5));
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 10);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut done = lock.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }
}

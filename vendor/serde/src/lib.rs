//! Offline stand-in for the `serde` crate (no network access in the build
//! environment, so proc-macro derives are unavailable).
//!
//! This stand-in is JSON-only: [`Serialize`] maps a value to a JSON
//! [`Value`] tree and [`Deserialize`] maps back. Instead of
//! `#[derive(Serialize, Deserialize)]`, types opt in with the declarative
//! macros [`impl_serde_struct!`], [`impl_serde_unit_enum!`] and
//! [`impl_serde_enum!`], which generate externally-tagged representations
//! compatible with what real serde + serde_json would have produced.

mod json;

pub use json::{parse_value, render_compact, render_pretty, Error, Map, Value};

/// Serialize into a JSON [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Deserialize from a JSON [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_serde_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => Ok(*n as $t),
                    other => Err(Error::type_mismatch("number", other)),
                }
            }
        }
    )*};
}

impl_serde_num!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::type_mismatch("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::type_mismatch("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::type_mismatch("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (*self).to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::type_mismatch("2-tuple", other)),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => {
                m.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
            }
            other => Err(Error::type_mismatch("object", other)),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Ordered output: BTreeMap collection keeps rendering deterministic.
        let mut map = Map::new();
        for (k, v) in self {
            map.insert(k.clone(), v.to_value());
        }
        Value::Object(map)
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => {
                m.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
            }
            other => Err(Error::type_mismatch("object", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// Impl macros replacing `#[derive(Serialize, Deserialize)]`
// ---------------------------------------------------------------------------

/// Implements [`Serialize`]/[`Deserialize`] for a struct with named fields,
/// as a JSON object keyed by field name.
#[macro_export]
macro_rules! impl_serde_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn to_value(&self) -> $crate::Value {
                let mut map = $crate::Map::new();
                $( map.insert(stringify!($field).to_string(),
                              $crate::Serialize::to_value(&self.$field)); )+
                $crate::Value::Object(map)
            }
        }

        impl $crate::Deserialize for $ty {
            fn from_value(v: &$crate::Value) -> ::std::result::Result<Self, $crate::Error> {
                let obj = v.as_object().ok_or_else(|| {
                    $crate::Error::msg(concat!("expected object for ", stringify!($ty)))
                })?;
                Ok(Self {
                    $( $field: $crate::Deserialize::from_value(
                        obj.get(stringify!($field)).unwrap_or(&$crate::Value::Null),
                    )?, )+
                })
            }
        }
    };
}

/// Implements the traits for a field-less enum, serialized as the variant
/// name string (matching serde's externally-tagged unit-variant form).
#[macro_export]
macro_rules! impl_serde_unit_enum {
    ($ty:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn to_value(&self) -> $crate::Value {
                let name = match self {
                    $( $ty::$variant => stringify!($variant), )+
                };
                $crate::Value::String(name.to_string())
            }
        }

        impl $crate::Deserialize for $ty {
            fn from_value(v: &$crate::Value) -> ::std::result::Result<Self, $crate::Error> {
                match v.as_str() {
                    $( Some(stringify!($variant)) => Ok($ty::$variant), )+
                    _ => Err($crate::Error::msg(concat!(
                        "unknown variant for ", stringify!($ty)
                    ))),
                }
            }
        }
    };
}

/// Implements the traits for an enum whose variants all carry named fields,
/// in serde's externally-tagged form: `{"Variant": {"field": ...}}`.
#[macro_export]
macro_rules! impl_serde_enum {
    ($ty:ident { $($variant:ident { $($field:ident),+ $(,)? }),+ $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn to_value(&self) -> $crate::Value {
                match self {
                    $( $ty::$variant { $($field),+ } => {
                        let mut inner = $crate::Map::new();
                        $( inner.insert(stringify!($field).to_string(),
                                        $crate::Serialize::to_value($field)); )+
                        let mut outer = $crate::Map::new();
                        outer.insert(stringify!($variant).to_string(),
                                     $crate::Value::Object(inner));
                        $crate::Value::Object(outer)
                    } )+
                }
            }
        }

        impl $crate::Deserialize for $ty {
            fn from_value(v: &$crate::Value) -> ::std::result::Result<Self, $crate::Error> {
                let obj = v.as_object().ok_or_else(|| {
                    $crate::Error::msg(concat!("expected object for ", stringify!($ty)))
                })?;
                let (tag, inner) = obj.iter().next().ok_or_else(|| {
                    $crate::Error::msg(concat!("empty enum object for ", stringify!($ty)))
                })?;
                match tag.as_str() {
                    $( stringify!($variant) => {
                        let fields = inner.as_object().ok_or_else(|| {
                            $crate::Error::msg("expected variant payload object")
                        })?;
                        Ok($ty::$variant {
                            $( $field: $crate::Deserialize::from_value(
                                fields.get(stringify!($field))
                                    .unwrap_or(&$crate::Value::Null),
                            )?, )+
                        })
                    } )+
                    other => Err($crate::Error::msg(format!(
                        "unknown variant {other} for {}", stringify!($ty)
                    ))),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Point {
        x: f64,
        tags: Vec<String>,
    }
    impl_serde_struct!(Point { x, tags });

    #[derive(Debug, PartialEq)]
    enum Color {
        Red,
        Green,
    }
    impl_serde_unit_enum!(Color { Red, Green });

    #[derive(Debug, PartialEq)]
    enum Op {
        Put { key: String, size: u64 },
        Del { key: String },
    }
    impl_serde_enum!(Op {
        Put { key, size },
        Del { key },
    });

    #[test]
    fn struct_roundtrip() {
        let p = Point { x: 1.5, tags: vec!["a".into(), "b".into()] };
        let v = p.to_value();
        assert_eq!(Point::from_value(&v).unwrap(), p);
    }

    #[test]
    fn unit_enum_roundtrip() {
        let v = Color::Green.to_value();
        assert_eq!(v, Value::String("Green".into()));
        assert_eq!(Color::from_value(&v).unwrap(), Color::Green);
    }

    #[test]
    fn tagged_enum_roundtrip() {
        let op = Op::Put { key: "k".into(), size: 9 };
        let v = op.to_value();
        assert_eq!(Op::from_value(&v).unwrap(), op);
        let del = Op::Del { key: "z".into() };
        assert_eq!(Op::from_value(&del.to_value()).unwrap(), del);
    }

    #[test]
    fn text_roundtrip_via_parser() {
        let op = Op::Put { key: "wal/1".into(), size: 123 };
        let text = render_compact(&op.to_value());
        let parsed = parse_value(&text).unwrap();
        assert_eq!(Op::from_value(&parsed).unwrap(), op);
    }
}

//! JSON value model, parser, and writer backing the serde stand-in.

use std::fmt;

/// Object representation (ordered, like `serde_json`'s `preserve_order`).
pub type Map<K = String, V = Value> = std::collections::BTreeMap<K, V>;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    /// All JSON numbers are kept as `f64` (exact for integers up to 2^53,
    /// which covers every id/counter this workspace serializes).
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object member lookup; `Null` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        self.as_array().and_then(|a| a.get(i)).unwrap_or(&NULL)
    }
}

// Comparisons against literals, used pervasively by tests
// (`assert_eq!(body["live_rows"], 3)`).
macro_rules! impl_eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                matches!(self, Value::Number(n) if *n == *other as f64)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

impl_eq_num!(i32, i64, u32, u64, usize, f64);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

// From conversions powering the `json!` macro.
macro_rules! impl_from_num {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(v as f64)
            }
        }
    )*};
}

impl_from_num!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f32, f64);

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<&&str> for Value {
    fn from(v: &&str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value>, const N: usize> From<[T; N]> for Value {
    fn from(v: [T; N]) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Value>> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl From<Map> for Value {
    fn from(m: Map) -> Value {
        Value::Object(m)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        v.map_or(Value::Null, Into::into)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&render_compact(self))
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }

    pub fn type_mismatch(expected: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        Error(format!("expected {expected}, got {kind}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_number(out: &mut String, n: f64) {
    if n.is_finite() {
        if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
            out.push_str(&format!("{}", n as i64));
        } else {
            out.push_str(&format!("{n}"));
        }
    } else {
        // serde_json also degrades non-finite numbers to null.
        out.push_str("null");
    }
}

fn render_into(out: &mut String, v: &Value, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => push_number(out, *n),
        Value::String(s) => push_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                render_into(out, item, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                if !items.is_empty() {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level));
                }
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                push_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render_into(out, val, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                if !map.is_empty() {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level));
                }
            }
            out.push('}');
        }
    }
}

/// Compact single-line rendering.
pub fn render_compact(v: &Value) -> String {
    let mut out = String::new();
    render_into(&mut out, v, None);
    out
}

/// Two-space indented rendering.
pub fn render_pretty(v: &Value) -> String {
    let mut out = String::new();
    render_into(&mut out, v, Some(0));
    out
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", expected as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Value::Null),
            Some(b't') => self.eat_keyword("true", Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf8 in number"))?;
        text.parse::<f64>().map(Value::Number).map_err(|_| self.err("invalid number"))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                    .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not reassembled; lone
                            // surrogates become the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parse a complete JSON document.
pub fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_render_roundtrip() {
        let text = r#"{"a":[1,2.5,-3],"b":"x\"y","c":null,"d":true,"e":{}}"#;
        let v = parse_value(text).unwrap();
        assert_eq!(parse_value(&render_compact(&v)).unwrap(), v);
        assert_eq!(v["a"][0], 1);
        assert_eq!(v["a"][1], 2.5);
        assert_eq!(v["b"], "x\"y");
        assert!(v["c"].is_null());
        assert_eq!(v["d"], true);
        assert!(v["missing"].is_null());
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(render_compact(&Value::Number(42.0)), "42");
        assert_eq!(render_compact(&Value::Number(-0.5)), "-0.5");
    }

    #[test]
    fn bad_input_is_an_error_not_a_panic() {
        for bad in ["{not json", "", "[1,", "\"open", "{\"a\" 1}", "nul"] {
            assert!(parse_value(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = parse_value(r#"{"k":[1,{"n":2}]}"#).unwrap();
        assert_eq!(parse_value(&render_pretty(&v)).unwrap(), v);
    }
}

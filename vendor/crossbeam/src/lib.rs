//! Offline stand-in for the `crossbeam` crate (no network access in the
//! build environment). Provides the `crossbeam::channel` subset used by the
//! workspace, backed by `std::sync::mpsc`.

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, TryRecvError};

    /// Sending half; unifies std's bounded/unbounded sender types so
    /// `bounded()` and `unbounded()` hand out the same `Sender<T>`.
    pub enum Sender<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match self {
                Sender::Unbounded(s) => Sender::Unbounded(s.clone()),
                Sender::Bounded(s) => Sender::Bounded(s.clone()),
            }
        }
    }

    /// Error returned when the receiving side has disconnected.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match self {
                Sender::Unbounded(s) => s.send(value).map_err(|e| SendError(e.0)),
                Sender::Bounded(s) => s.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// Receiving half.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    /// Channel with unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender::Unbounded(tx), Receiver(rx))
    }

    /// Channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender::Bounded(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(42).unwrap();
        assert_eq!(rx.recv().unwrap(), 42);
    }

    #[test]
    fn bounded_ack_pattern() {
        let (tx, rx) = bounded(1);
        tx.send(()).unwrap();
        rx.recv().unwrap();
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<i32>();
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        ));
    }

    #[test]
    fn disconnect_detected() {
        let (tx, rx) = unbounded::<i32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}

//! Offline stand-in for the `rand` crate (no network access in the build
//! environment). Deterministic xoshiro256** generator behind the `Rng` /
//! `SeedableRng` subset the workspace uses (`gen_range`, `gen_bool`, `gen`,
//! shuffling). Not cryptographically secure — statistical use only.

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types that can be sampled uniformly from a range (the `gen_range`
/// argument). Implemented for `Range`/`RangeInclusive` of the numeric types
/// the workspace uses.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                start + unit * (end - start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Values `Rng::gen` can produce.
pub trait Standard: Sized {
    fn gen_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn gen_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn gen_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn gen_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn gen_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn gen_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64) as f32
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::gen_from(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** by Blackman & Vigna; state seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// The workspace never needs a distinct small generator.
    pub type SmallRng = StdRng;

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Process-unique, loosely seeded generator for non-reproducible use.
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.subsec_nanos()).unwrap_or(0);
    <rngs::StdRng as SeedableRng>::seed_from_u64(
        (std::process::id() as u64) << 32 | nanos as u64,
    )
}

pub mod seq {
    use super::RngCore;

    /// Slice shuffling/choosing (the `rand::seq::SliceRandom` subset).
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let one = std::hint::black_box(1usize);
            let u = rng.gen_range(0..one);
            assert!(u < 1);
        }
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn float_range_is_well_distributed() {
        let mut rng = StdRng::seed_from_u64(5);
        let mean: f64 =
            (0..10_000).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean={mean}");
    }
}

//! Offline stand-in for the `bytes` crate (no network access in the build
//! environment). Implements the subset the workspace uses: cheaply-clonable
//! immutable [`Bytes`], growable [`BytesMut`], and the [`Buf`]/[`BufMut`]
//! little-endian accessors.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Cheaply clonable immutable byte buffer (reference-counted).
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<Vec<u8>>);

impl Bytes {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes(Arc::new(data.to_vec()))
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::new(data.to_vec()))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.0.as_ref().clone()
    }

    /// Copy of the `start..end` sub-range as a new `Bytes`.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes(Arc::new(self.0[range].to_vec()))
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::new(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(Arc::new(v.to_vec()))
    }
}

impl From<BytesMut> for Bytes {
    fn from(v: BytesMut) -> Self {
        v.freeze()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.0.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.0.as_slice() == *other
    }
}

/// Growable byte buffer used to build a [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes(Arc::new(self.0))
    }

    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Read-side cursor operations; implemented for `&[u8]` so decoding code can
/// consume a slice in place.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn advance(&mut self, n: usize);
    fn copy_bytes(&mut self, n: usize) -> Vec<u8>;

    fn get_u8(&mut self) -> u8 {
        self.copy_bytes(1)[0]
    }
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.copy_bytes(4).try_into().unwrap())
    }
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.copy_bytes(8).try_into().unwrap())
    }
    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.copy_bytes(8).try_into().unwrap())
    }
    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.copy_bytes(4).try_into().unwrap())
    }
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.copy_bytes(8).try_into().unwrap())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn copy_bytes(&mut self, n: usize) -> Vec<u8> {
        let out = self[..n].to_vec();
        *self = &self[n..];
        out
    }
}

/// Write-side append operations; implemented for [`BytesMut`] and `Vec<u8>`.
pub trait BufMut {
    fn put_slice(&mut self, data: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, data: &[u8]) {
        self.extend_from_slice(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u32_le(7);
        buf.put_i64_le(-9);
        buf.put_f32_le(1.5);
        buf.put_slice(b"xy");
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u32_le(), 7);
        assert_eq!(cursor.get_i64_le(), -9);
        assert_eq!(cursor.get_f32_le(), 1.5);
        assert_eq!(cursor.remaining(), 2);
        cursor.advance(1);
        assert_eq!(cursor, b"y");
    }

    #[test]
    fn bytes_clone_is_cheap_and_equal() {
        let b = Bytes::from(vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.len(), 3);
    }
}

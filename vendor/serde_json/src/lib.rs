//! Offline stand-in for the `serde_json` crate, a thin facade over the
//! vendored `serde` value model (see `vendor/serde`).

pub use serde::{Error, Map, Value};

/// Serialize to a compact JSON string.
#[allow(clippy::unnecessary_wraps)] // keeps the real serde_json signature
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::render_compact(&value.to_value()))
}

/// Serialize to an indented JSON string.
#[allow(clippy::unnecessary_wraps)]
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::render_pretty(&value.to_value()))
}

/// Serialize to a UTF-8 byte vector.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serialize into an `io::Write` sink.
pub fn to_writer<W: std::io::Write, T: serde::Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let text = to_string(value)?;
    writer.write_all(text.as_bytes()).map_err(|e| Error::msg(e.to_string()))
}

/// Deserialize from a JSON string.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    T::from_value(&serde::parse_value(text)?)
}

/// Deserialize from JSON bytes.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error::msg(e.to_string()))?;
    from_str(text)
}

/// Build a [`Value`] from literal-ish syntax. Unlike the real `serde_json`
/// macro, object/array members must be Rust expressions (wrap nested JSON
/// objects in another `json!` call).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($elem) ),* ])
    };
    ({ $($key:tt : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert(($key).to_string(), $crate::Value::from($val)); )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let v = json!({ "a": 1, "b": [1, 2], "c": "x", "nested": json!({"d": true}) });
        assert_eq!(v["a"], 1);
        assert_eq!(v["b"][1], 2);
        assert_eq!(v["c"], "x");
        assert_eq!(v["nested"]["d"], true);
        assert!(json!(null).is_null());
        assert_eq!(json!(5), 5);
    }

    #[test]
    fn string_roundtrip() {
        let v = json!({ "k": [1.5, -2.0] });
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn from_slice_rejects_bad_json() {
        assert!(from_slice::<Value>(b"{oops").is_err());
    }
}

//! Offline stand-in for the `rayon` crate (no network access in the build
//! environment). The workspace uses exactly one parallel shape —
//! `(..).into_par_iter().map(f).collect::<Vec<_>>()` — so this shim
//! implements that shape honestly: items are split into per-thread chunks,
//! mapped on scoped threads, and re-assembled in order. Everything else from
//! rayon's API surface is intentionally absent.

/// Number of worker threads a parallel map will use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Entry point mirroring `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator: Sized {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<I> IntoParallelIterator for I
where
    I: IntoIterator,
    I::Item: Send,
{
    type Item = I::Item;

    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter { items: self.into_iter().collect() }
    }
}

/// Materialized item list awaiting a `map`.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap { items: self.items, f }
    }
}

/// A pending parallel map; `collect` executes it.
pub struct ParMap<T: Send, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParMap<T, F> {
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromParallelIterator<R>,
    {
        let ParMap { items, f } = self;
        let n = items.len();
        let threads = current_num_threads().min(n.max(1));
        if threads <= 1 || n < 2 {
            return C::from_ordered(items.into_iter().map(f).collect());
        }

        // Order-preserving chunked fan-out: thread i takes the i-th chunk,
        // results are concatenated chunk order = input order.
        let chunk = n.div_ceil(threads);
        let mut chunks: Vec<Vec<T>> = Vec::new();
        let mut items = items.into_iter();
        loop {
            let c: Vec<T> = items.by_ref().take(chunk).collect();
            if c.is_empty() {
                break;
            }
            chunks.push(c);
        }

        let f = &f;
        let mapped: Vec<Vec<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|c| scope.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
                .collect();
            handles.into_iter().map(|h| h.join().expect("parallel map worker panicked")).collect()
        });
        C::from_ordered(mapped.into_iter().flatten().collect())
    }
}

/// Collection targets for a parallel map (only `Vec` is needed).
pub trait FromParallelIterator<R> {
    fn from_ordered(items: Vec<R>) -> Self;
}

impl<R> FromParallelIterator<R> for Vec<R> {
    fn from_ordered(items: Vec<R>) -> Self {
        items
    }
}

pub mod prelude {
    pub use super::{FromParallelIterator, IntoParallelIterator};
}

pub mod iter {
    pub use super::{IntoParallelIterator, ParIter, ParMap};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_on_vectors_and_empty_input() {
        let out: Vec<String> =
            vec!["a", "b"].into_par_iter().map(|s| s.to_uppercase()).collect();
        assert_eq!(out, vec!["A", "B"]);
        let empty: Vec<i32> = Vec::<i32>::new().into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
    }

    #[test]
    fn captures_environment() {
        let base = 10;
        let out: Vec<i32> = (0..4).into_par_iter().map(|i| i + base).collect();
        assert_eq!(out, vec![10, 11, 12, 13]);
    }
}
